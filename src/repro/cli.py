"""Command-line interface.

    python -m repro place   --circuit ibm01 --preset fast --svg out.svg
    python -m repro compare --circuit ibm06 --preset fast
    python -m repro suites
    python -m repro bookshelf --circuit ibm03 --out /tmp/ibm03

Subcommands:

- ``place``     — run the full MCTS-guided flow on a suite circuit (or a
  Bookshelf ``.aux``) and print the result; optionally write an SVG.
- ``compare``   — run the flow plus the baseline placers and print a
  paper-style comparison table.
- ``suites``    — list the available synthetic benchmark circuits.
- ``bookshelf`` — export a synthetic circuit as a Bookshelf bundle.
- ``serve``     — run the placement service daemon over a service dir.
- ``submit``    — queue one placement job into a service dir.
- ``status``    — show the job table and the latest metrics snapshot.
- ``cancel``    — cancel a queued job (or request daemon shutdown).
- ``result``    — fetch one job's result record, optionally waiting.
- ``gc``        — run the resource governor's collector offline against
  a service dir: retire old terminal run dirs (journal-summarized
  first), evict/compact the caches, compact the journal.
- ``doctor``    — validate a run directory offline (manifest, artifact
  checksums, journals, optionally the final placement itself);
  ``--resources`` reports a service dir's disk/memory footprint and
  quota verdict instead.
- ``chaos``     — run the fault-injection drill against a throwaway
  service: every injected failure must end DONE-after-retry or
  QUARANTINED, with DONE HPWLs bit-identical to the unfaulted baseline.
  ``--fleet`` escalates to the multi-process shard-kill drill;
  ``--governed`` runs a fleet inside a tight synthetic disk quota with
  injected ENOSPC.
- ``fleet``     — sharded-fleet verbs over one shared service dir:
  ``fleet serve`` boots N crash-safe shard daemons (work is claimed by
  lease; a SIGKILLed shard's jobs are stolen and resumed by peers),
  ``fleet shard`` runs a single shard in the foreground, ``fleet
  status`` shows jobs + leases + aggregated metrics, ``fleet drain``
  asks every shard to exit after in-flight work.
- ``study``     — design-space-exploration studies: ``study run``
  expands a declarative sweep spec (JSON/TOML) into a warm-aware job
  DAG and drives it through the service (crash-safe; re-running resumes
  without resubmitting DONE points), ``study status`` shows per-point
  and per-fingerprint-group progress, ``study report`` consolidates the
  results into a HPWL-vs-runtime Pareto front with per-knob sensitivity
  and warm-sharing evidence.

The service verbs speak a file-based protocol (``inbox/``, ``control/``,
``results/``, ``jobs.jsonl``), so clients and daemon need no network
stack — see :mod:`repro.service`.
"""

from __future__ import annotations

import argparse
import copy
import os
import sys

from repro.core import MCTSGuidedPlacer, PlacerConfig
from repro.runtime.errors import PlacementError, UsageError


def _load_design(args) -> tuple[str, "object"]:
    from repro.service.jobs import resolve_design

    return resolve_design(
        circuit=args.circuit,
        aux=args.aux,
        scale=args.scale,
        macro_scale=args.macro_scale,
    )


def _preset(name: str, seed: int) -> PlacerConfig:
    presets = {
        "fast": PlacerConfig.fast,
        "benchmark": PlacerConfig.benchmark,
        "paper": lambda seed=0: PlacerConfig.paper(),
    }
    if name not in presets:
        raise UsageError(
            f"unknown preset {name!r}; choose from {sorted(presets)}", preset=name
        )
    return presets[name](seed=seed) if name != "paper" else PlacerConfig.paper()


def cmd_place(args) -> int:
    """Run the full MCTS-guided flow on one circuit; print the results."""
    from dataclasses import replace

    name, design = _load_design(args)
    config = _preset(args.preset, args.seed)
    if getattr(args, "legal_cells", False):
        config = replace(config, legalize_cells=True)
    if getattr(args, "terminal_workers", None):
        config = replace(config, terminal_workers=args.terminal_workers)
    if getattr(args, "exact_topk", None) is not None:
        config = replace(config, exact_topk=args.exact_topk)
    if getattr(args, "inference_broker", False):
        config = replace(config, inference_broker=True)
    if getattr(args, "inference_max_batch", None):
        config = replace(config, inference_max_batch=args.inference_max_batch)
    if getattr(args, "inference_coalesce_us", None) is not None:
        config = replace(
            config, inference_coalesce_us=args.inference_coalesce_us
        )
    if getattr(args, "verify", False):
        config = replace(config, verify_results=True)
    if args.resume and not args.run_dir:
        raise UsageError("--resume requires --run-dir")
    print(f"placing {name}: {design.netlist.stats()}")
    result = MCTSGuidedPlacer(config).place(
        design, run_dir=args.run_dir, resume=args.resume
    )
    best = min(result.hpwl, result.search.best_terminal_wirelength)
    print(f"HPWL            : {result.hpwl:.1f} (best terminal {best:.1f})")
    if result.verification is not None:
        print(f"verification    : {result.verification.summary()}")
    if result.legal_hpwl is not None:
        stats = result.cell_legalization
        print(f"legalized cells : HPWL {result.legal_hpwl:.1f} "
              f"({stats.placed} placed, {stats.failed} failed)")
    print(f"macro groups    : {result.n_macro_groups}")
    search = result.search
    evals = (f"terminal evals  : {search.n_exact_evaluations} exact, "
             f"{search.n_surrogate_evaluations} surrogate")
    if search.n_surrogate_evaluations:
        evals += f" ({search.seconds_surrogate:.2f}s tier 1)"
    if search.surrogate_spearman is not None:
        evals += f", spearman {search.surrogate_spearman:.3f}"
    print(evals)
    print(f"MCTS stage      : {result.mcts_runtime:.1f}s "
          f"(total {result.stopwatch.overall():.1f}s)")
    breakdown = " | ".join(
        f"{stage} {seconds:.2f}s"
        for stage, seconds in result.stage_seconds.items()
        if seconds > 0.0
    )
    print(f"stage breakdown : {breakdown}")
    if args.svg:
        from repro.eval.visualize import save_placement_svg
        from repro.grid.plan import GridPlan

        plan = GridPlan(design.region, zeta=config.zeta)
        save_placement_svg(design, args.svg, plan=plan)
        print(f"wrote {args.svg}")
    if args.ascii:
        from repro.eval.visualize import placement_ascii

        print(placement_ascii(design))
    return 0


def cmd_compare(args) -> int:
    """Place one circuit with every baseline and the flow; print the table."""
    from repro.baselines import (
        BTreeFloorplanPlacer,
        RandomPlacer,
        RePlAceLikePlacer,
        SAPlacer,
        SEPlacer,
        WiremaskPlacer,
    )
    from repro.eval.report import ComparisonTable

    name, design = _load_design(args)
    print(f"comparing on {name}: {design.netlist.stats()}")
    methods = ["random", "sa", "btree", "se", "maskplace", "replace", "ours"]
    table = ComparisonTable(methods=methods, reference="ours")

    baselines = {
        "random": RandomPlacer(seed=args.seed),
        "sa": SAPlacer(n_moves=1500, seed=args.seed),
        "btree": BTreeFloorplanPlacer(n_moves=1500, seed=args.seed),
        "se": SEPlacer(generations=12, seed=args.seed),
        "maskplace": WiremaskPlacer(bins=16, rollouts=8, seed=args.seed),
        "replace": RePlAceLikePlacer(seed=args.seed),
    }
    for key, placer in baselines.items():
        d = copy.deepcopy(design)
        result = placer.place(d)
        table.add(name, key, result.hpwl)
        print(f"  {key:10s} {result.hpwl:12.1f}  ({result.runtime:.1f}s)")

    config = _preset(args.preset, args.seed)
    result = MCTSGuidedPlacer(config).place(copy.deepcopy(design))
    ours = min(result.hpwl, result.search.best_terminal_wirelength)
    table.add(name, "ours", ours)
    print(f"  {'ours':10s} {ours:12.1f}  "
          f"({result.stopwatch.overall():.1f}s)")
    print()
    print(table.render())
    return 0


def cmd_suites(_args) -> int:
    """List the synthetic benchmark circuits and their paper statistics."""
    from repro.netlist.suites import ICCAD04_STATS, INDUSTRIAL_STATS

    print("ICCAD04-alike (Table III) — macros / cells / nets at scale=1:")
    for name, (m, c, n) in ICCAD04_STATS.items():
        print(f"  {name:6s} {m:5d} {c:9,d} {n:9,d}")
    print("industrial-alike (Table II) — mov/pre macros, pads, cells, nets:")
    for name, (mv, pre, pads, c, n) in INDUSTRIAL_STATS.items():
        print(f"  {name:6s} {mv:4d} {pre:4d} {pads:5d} {c:11,d} {n:11,d}")
    return 0


def cmd_bookshelf(args) -> int:
    """Export a circuit as a Bookshelf bundle."""
    from repro.netlist.bookshelf import write_design

    name, design = _load_design(args)
    aux = write_design(design, args.out)
    print(f"wrote {aux}")
    return 0


# -- placement service -------------------------------------------------------
def cmd_serve(args) -> int:
    """Run the placement service daemon over a service directory."""
    from repro.service import PlacementService

    service = PlacementService(
        args.service_dir,
        workers=args.workers,
        max_queue=args.max_queue,
        poll_interval=args.poll_interval,
        stall_seconds=args.stall_seconds,
        max_retries=args.max_retries,
        backoff_base=args.backoff_base,
        verify_results=not args.no_verify,
        inference_broker=args.inference_broker,
        inference_max_batch=args.inference_max_batch,
        inference_coalesce_us=args.inference_coalesce_us,
        **_governor_kwargs(args),
    )
    print(f"serving {args.service_dir} "
          f"(workers={args.workers}, max_queue={args.max_queue}, "
          f"drain={args.drain}, stall_seconds={args.stall_seconds}, "
          f"max_retries={args.max_retries}, "
          f"inference_broker={args.inference_broker})")
    snapshot = service.run(drain=args.drain, max_seconds=args.max_seconds)
    jobs = snapshot["jobs"]
    print("served: " + ", ".join(f"{k}={v}" for k, v in jobs.items()))
    return 0


def _governor_kwargs(args) -> dict:
    """Resource-governance knobs shared by serve / fleet shard / gc."""
    return dict(
        disk_quota_bytes=args.disk_quota_bytes,
        mem_quota_bytes=args.mem_quota_bytes,
        high_water=args.high_water,
        low_water=args.low_water,
        retention_runs=args.retention_runs,
        rejected_ttl=args.rejected_ttl,
        warm_quota_bytes=args.warm_quota_bytes,
        terminal_cache_quota_bytes=args.terminal_cache_quota_bytes,
        journal_quota_bytes=args.journal_quota_bytes,
        rundir_projection_bytes=args.rundir_projection_bytes,
        resource_sample_interval=args.resource_sample_interval,
    )


def _parse_set(pairs: list[str] | None) -> tuple | None:
    """``--set knob=value`` pairs → override tuples (values parse as
    JSON, falling back to a bare string)."""
    import json

    if not pairs:
        return None
    out = []
    for pair in pairs:
        knob, sep, raw = pair.partition("=")
        if not sep or not knob:
            raise UsageError(
                f"--set needs knob=value, got {pair!r}", set=pair
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        out.append((knob, value))
    return tuple(out)


def cmd_submit(args) -> int:
    """Queue one placement job; prints the job id."""
    from repro.service import JobSpec
    from repro.service.service import submit_job

    spec = JobSpec(
        circuit=None if args.aux else args.circuit,
        aux=args.aux,
        scale=args.scale,
        macro_scale=args.macro_scale,
        preset=args.preset,
        seed=args.seed,
        terminal_workers=args.terminal_workers or 1,
        budget_seconds=args.budget_seconds,
        overrides=_parse_set(args.set),
    )
    job_id = submit_job(args.service_dir, spec, priority=args.priority)
    print(job_id)
    return 0


def cmd_status(args) -> int:
    """Print the job table and the latest metrics snapshot."""
    import json
    import os

    from repro.service import JobStore, ServicePaths

    paths = ServicePaths(args.service_dir)
    store = JobStore(paths.journal).load()
    jobs = store.jobs()
    if args.job:
        jobs = [j for j in jobs if j.id == args.job]
        if not jobs:
            raise UsageError(f"unknown job {args.job!r}",
                             service_dir=args.service_dir)
    if args.json:
        metrics = None
        if os.path.exists(paths.metrics):
            with open(paths.metrics) as f:
                metrics = json.load(f)
        print(json.dumps(
            {
                "jobs": [job.to_json() for job in jobs],
                "counts": store.counts(),
                "metrics": metrics,
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"{'JOB':16s} {'STATE':10s} {'PRI':>3s} {'WARM':>4s} "
          f"{'SECONDS':>8s}  HPWL")
    for job in jobs:
        hpwl = f"{job.hpwl:.1f}" if job.hpwl is not None else "-"
        seconds = f"{job.seconds:.1f}" if job.seconds is not None else "-"
        warm = "yes" if job.warm_hit else "-"
        line = (f"{job.id:16s} {job.state:10s} {job.priority:3d} "
                f"{warm:>4s} {seconds:>8s}  {hpwl}")
        if job.error:
            line += f"  [{job.error.get('kind')}] {job.error.get('message')}"
        print(line)
    counts = store.counts()
    print("jobs: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    if os.path.exists(paths.metrics):
        with open(paths.metrics) as f:
            metrics = json.load(f)
        counters = metrics.get("counters", {})
        print("metrics: queue_depth=%s warm_hits=%s terminal_cache_hits=%s "
              "degradations=%s" % (
                  metrics.get("queue_depth"),
                  counters.get("warm_hits", 0),
                  counters.get("terminal_cache_hits", 0),
                  counters.get("degradations", 0),
              ))
        if args.metrics:
            print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def cmd_cancel(args) -> int:
    """Request cancellation of a queued job (or daemon shutdown)."""
    from repro.service.service import request_cancel, request_stop

    if args.shutdown:
        request_stop(args.service_dir)
        print("shutdown requested")
        return 0
    if not args.job:
        raise UsageError("cancel needs --job (or --shutdown)")
    request_cancel(args.service_dir, args.job)
    print(f"cancel requested for {args.job}")
    return 0


def cmd_result(args) -> int:
    """Print one job's result record (optionally waiting for it)."""
    import json

    from repro.service.service import read_result, wait_for_result

    if args.wait:
        result = wait_for_result(args.service_dir, args.job, timeout=args.wait)
        if result is None:
            raise UsageError(
                f"job {args.job!r} produced no result within {args.wait}s",
                service_dir=args.service_dir,
            )
    else:
        result = read_result(args.service_dir, args.job)
        if result is None:
            raise UsageError(
                f"no result for job {args.job!r} (still queued/running?)",
                service_dir=args.service_dir,
            )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["state"] == "DONE" else 1


# -- sharded fleet -----------------------------------------------------------
def cmd_fleet_shard(args) -> int:
    """Run one fleet shard daemon in the foreground."""
    from repro.service import FleetShard

    shard = FleetShard(
        args.service_dir,
        shard=args.shard,
        lease_ttl=args.lease_ttl,
        workers=args.workers,
        max_queue=args.max_queue,
        poll_interval=args.poll_interval,
        stall_seconds=args.stall_seconds,
        max_retries=args.max_retries,
        backoff_base=args.backoff_base,
        verify_results=not args.no_verify,
        inference_broker=args.inference_broker,
        inference_max_batch=args.inference_max_batch,
        inference_coalesce_us=args.inference_coalesce_us,
        **_governor_kwargs(args),
    )
    print(f"shard {shard.shard} serving {args.service_dir} "
          f"(lease_ttl={args.lease_ttl}s, drain={args.drain})")
    snapshot = shard.run(drain=args.drain, max_seconds=args.max_seconds)
    jobs = snapshot["jobs"]
    print(f"shard {shard.shard} exiting: "
          + ", ".join(f"{k}={v}" for k, v in jobs.items()))
    return 0


def cmd_fleet_serve(args) -> int:
    """Boot N shard daemons over one shared service dir; wait for them."""
    import subprocess

    from repro.service import FleetPaths, write_fleet_metrics

    paths = FleetPaths(args.service_dir).ensure()
    # A stale stop file from a previous drain would make every new shard
    # exit immediately; the launcher owns the stop file's lifecycle.
    try:
        os.remove(paths.stop_file)
    except FileNotFoundError:
        pass
    procs = []
    for i in range(args.shards):
        cmd = [
            sys.executable, "-m", "repro", "fleet", "shard",
            "--service-dir", args.service_dir,
            "--shard", f"shard-{i}",
            "--lease-ttl", str(args.lease_ttl),
            "--poll-interval", str(args.poll_interval),
            "--workers", str(args.workers),
            "--max-retries", str(args.max_retries),
            "--backoff-base", str(args.backoff_base),
        ]
        if args.drain:
            cmd.append("--drain")
        if args.max_seconds is not None:
            cmd += ["--max-seconds", str(args.max_seconds)]
        if args.no_verify:
            cmd.append("--no-verify")
        if args.inference_broker:
            # Each shard daemon owns its own broker (one per process; the
            # broker serves every scheduler slot of that shard).
            cmd += [
                "--inference-broker",
                "--inference-max-batch", str(args.inference_max_batch),
                "--inference-coalesce-us", str(args.inference_coalesce_us),
            ]
        cmd += [
            "--high-water", str(args.high_water),
            "--low-water", str(args.low_water),
            "--rejected-ttl", str(args.rejected_ttl),
            "--rundir-projection-bytes", str(args.rundir_projection_bytes),
            "--resource-sample-interval", str(args.resource_sample_interval),
        ]
        for flag, value in (
            ("--disk-quota-bytes", args.disk_quota_bytes),
            ("--mem-quota-bytes", args.mem_quota_bytes),
            ("--retention-runs", args.retention_runs),
            ("--warm-quota-bytes", args.warm_quota_bytes),
            ("--terminal-cache-quota-bytes", args.terminal_cache_quota_bytes),
            ("--journal-quota-bytes", args.journal_quota_bytes),
        ):
            if value is not None:
                cmd += [flag, str(value)]
        procs.append(subprocess.Popen(cmd))
    print(f"fleet of {args.shards} shards serving {args.service_dir} "
          f"(lease_ttl={args.lease_ttl}s, drain={args.drain})")
    codes = [p.wait() for p in procs]
    try:
        os.remove(paths.stop_file)
    except FileNotFoundError:
        pass
    snapshot = write_fleet_metrics(paths)
    print("fleet done: " + ", ".join(
        f"{k}={v}" for k, v in snapshot["jobs"].items()
    ))
    return 0 if all(code == 0 for code in codes) else 1


def cmd_fleet_status(args) -> int:
    """Print the fleet-wide job table, live leases, and merged metrics."""
    import json
    import time as _time

    from repro.service import FleetPaths, fleet_status, write_fleet_metrics

    status = fleet_status(args.service_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"{'JOB':16s} {'STATE':12s} {'SHARD':14s} {'ATT':>3s}  HPWL")
    for job in status["jobs"]:
        hpwl = f"{job['hpwl']:.1f}" if job["hpwl"] is not None else "-"
        print(f"{job['id']:16s} {job['state']:12s} "
              f"{job['shard'] or '-':14s} {job['attempts']:3d}  {hpwl}")
    print("jobs: " + ", ".join(
        f"{k}={v}" for k, v in status["counts"].items()
    ))
    now = _time.time()
    for lease in status["leases"]:
        state = "EXPIRED" if lease["expired"] else (
            f"{lease['expires'] - now:.1f}s left"
        )
        print(f"lease {lease['job_id']}: shard={lease['shard']} "
              f"token={lease['token']} {state}")
    metrics = write_fleet_metrics(FleetPaths(args.service_dir))
    counters = metrics.get("counters", {})
    print(f"fleet: shards_reporting={metrics['n_shards']} "
          f"done={counters.get('jobs_done', 0)} "
          f"reclaimed={counters.get('jobs_reclaimed', 0)} "
          f"leases_lost={counters.get('leases_lost', 0)} "
          f"stale_lease_drops={counters.get('stale_lease_drops', 0)}")
    return 0


def cmd_fleet_drain(args) -> int:
    """Ask every shard to exit once its in-flight work finishes."""
    from repro.service.service import request_stop

    request_stop(args.service_dir)
    print("fleet drain requested (shards exit after in-flight jobs; "
          "the stop file stays until 'fleet serve' clears it)")
    return 0


# -- design-space-exploration studies ----------------------------------------
def _load_study(args):
    from repro.study import Study, StudySpec

    if getattr(args, "spec", None):
        spec = StudySpec.from_file(args.spec)
        return Study.create(args.study_dir, spec)
    return Study.load(args.study_dir)


def cmd_study_run(args) -> int:
    """Expand the spec and drive every point through the service."""
    study = _load_study(args)
    status = study.run(
        args.service_dir,
        serve=args.serve,
        workers=args.workers,
        poll=args.poll,
        max_seconds=args.max_seconds,
    )
    counts = status["counts"]
    print(f"study {status['name']}: {counts['DONE']}/{status['total']} done "
          + ", ".join(f"{k}={v}" for k, v in counts.items() if v))
    if not status["complete"]:
        print("study incomplete (re-run to resume; DONE points are never "
              "resubmitted)")
        return 1
    return 0 if counts["DONE"] == status["total"] else 1


def cmd_study_status(args) -> int:
    """Show study progress (optionally overlaying live service state)."""
    import json

    study = _load_study(args)
    status = study.status(service_dir=args.service_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    print(f"study {status['name']}  [{status['fingerprint']}]  "
          f"{counts['DONE']}/{status['total']} done")
    print("points: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    for group in status["groups"]:
        states = ", ".join(f"{k}={v}" for k, v in group["states"].items())
        print(f"  group {group['fingerprint']}: {group['points']} points "
              f"({states})")
    return 0


def cmd_study_report(args) -> int:
    """Fold per-job results into the consolidated Pareto report."""
    import json

    from repro.study import build_report, render_report, save_report

    study = _load_study(args)
    report = build_report(study, args.service_dir)
    path = save_report(study, report)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
        print(f"report written to {path}")
    return 0 if report["complete"] and not report["failures"] else 1


def cmd_gc(args) -> int:
    """Run the resource governor's collector offline (no daemon needed).

    Constructs the same :class:`~repro.service.governor.ResourceGovernor`
    the daemon runs, against a stopped (or live-but-quiet) service dir.
    Without ``--emergency``, only the steps whose knobs are set act —
    e.g. ``--retention-runs 5`` retires old terminal run dirs and
    ``--journal-quota-bytes 0`` forces a journal compaction.  With
    ``--emergency`` everything collectible is collected.  In a fleet,
    stop the shards first (``repro fleet drain``) before compacting the
    shared journal — the offline collector has no peers to fence.
    """
    import json

    from repro.service import JobStore, ServicePaths
    from repro.service.governor import ResourceGovernor, resource_report
    from repro.service.metrics import ServiceMetrics
    from repro.service.warm import WarmArtifactCache

    paths = ServicePaths(args.service_dir).ensure()
    governor = ResourceGovernor(
        paths,
        JobStore(paths.journal).load(),
        ServiceMetrics(),
        WarmArtifactCache(paths.warm),
        disk_quota_bytes=args.disk_quota_bytes,
        mem_quota_bytes=args.mem_quota_bytes,
        high_water=args.high_water,
        low_water=args.low_water,
        retention_runs=args.retention_runs,
        rejected_ttl=args.rejected_ttl,
        warm_quota_bytes=args.warm_quota_bytes,
        terminal_cache_quota_bytes=args.terminal_cache_quota_bytes,
        journal_quota_bytes=args.journal_quota_bytes,
        rundir_projection_bytes=args.rundir_projection_bytes,
        sample_interval=args.resource_sample_interval,
    )
    summary = governor.gc(emergency=args.emergency, dry_run=args.dry_run)
    report = resource_report(paths, disk_quota_bytes=args.disk_quota_bytes)
    if args.json:
        print(json.dumps({"gc": summary, "resources": report},
                         indent=2, sort_keys=True))
        return 0
    mode = ("DRY RUN" if args.dry_run
            else "emergency" if args.emergency else "policy")
    print(f"gc ({mode}) over {args.service_dir}:")
    print(f"  rejected swept: {summary['rejected_deleted']}")
    print(f"  run dirs retired: {summary['run_dirs_deleted']} "
          f"({summary['run_dir_bytes_freed']} bytes)")
    print(f"  warm entries evicted: {summary['warm_evicted']}")
    print(f"  terminal cache: {summary['terminal_cache']}")
    print(f"  journal: {summary['journal']}")
    print(f"footprint now: {report['total_bytes']} bytes "
          f"({report['run_dirs']} run dirs, "
          f"{report['rejected_pending']} rejected pending)")
    return 0


def _print_resource_report(report: dict) -> None:
    print(f"resources: {report['root']}")
    for name, size in report["breakdown"].items():
        print(f"  {name:16s} {size:>12d} bytes")
    print(f"  {'total':16s} {report['total_bytes']:>12d} bytes "
          f"({report['run_dirs']} run dirs, "
          f"{report['rejected_pending']} rejected pending)")
    print(f"  {'fs free':16s} {report['disk_free_bytes']:>12d} bytes")
    print(f"  {'process rss':16s} {report['rss_bytes']:>12d} bytes")
    if report.get("disk_quota_bytes"):
        verdict = "OVER QUOTA" if report["over_quota"] else "within quota"
        print(f"  quota {report['disk_quota_bytes']} bytes: "
              f"{report['quota_used_frac'] * 100:.1f}% used ({verdict})")


def cmd_doctor(args) -> int:
    """Validate a run directory offline; non-zero exit on any failure."""
    from repro.verify.doctor import doctor_run_dir

    if args.resources:
        from repro.service import ServicePaths
        from repro.service.governor import resource_report

        if not args.service_dir:
            raise UsageError("doctor --resources needs --service-dir")
        report = resource_report(
            ServicePaths(args.service_dir),
            disk_quota_bytes=args.disk_quota_bytes,
        )
        _print_resource_report(report)
        return 1 if report.get("over_quota") else 0
    if not args.run_dir:
        raise UsageError("doctor needs a run directory (or --resources)")
    design = None
    if args.circuit or args.aux:
        _, design = _load_design(args)
    report = doctor_run_dir(args.run_dir, design=design, zeta=args.zeta)
    print(f"doctor: {args.run_dir}")
    for check in report.checks:
        print(f"  {check}")
    print(f"result: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    """Run the fault-injection drill; non-zero exit unless every gate holds."""
    import json
    import tempfile

    from repro.service.chaos import (
        format_fleet_report,
        format_governed_report,
        format_report,
        run_chaos_drill,
        run_fleet_drill,
        run_governed_drill,
    )

    if args.governed:
        def drill(root):
            return run_governed_drill(
                root,
                n_shards=args.shards,
                n_jobs=args.jobs,
                lease_ttl=args.lease_ttl,
                max_seconds=args.max_seconds,
            )

        formatter = format_governed_report
    elif args.fleet:
        def drill(root):
            return run_fleet_drill(
                root,
                n_shards=args.shards,
                n_jobs=args.jobs,
                n_kills=args.kills,
                lease_ttl=args.lease_ttl,
                max_seconds=args.max_seconds,
            )

        formatter = format_fleet_report
    else:
        def drill(root):
            return run_chaos_drill(
                root,
                stall_seconds=args.stall_seconds,
                max_seconds=args.max_seconds,
            )

        formatter = format_report
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        report = drill(args.out)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = drill(tmp)
    print(formatter(report))
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"wrote {args.report}")
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MCTS-guided macro placement (DATE 2025 repro)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        """Arguments shared by the circuit-consuming subcommands."""
        p.add_argument("--circuit", default="ibm01",
                       help="suite circuit name (ibm01..ibm18, Cir1..Cir6)")
        p.add_argument("--aux", default=None,
                       help="path to a Bookshelf .aux file (overrides --circuit)")
        p.add_argument("--scale", type=float, default=0.01,
                       help="cell/net count scale factor for synthetic circuits")
        p.add_argument("--macro-scale", type=float, default=0.08,
                       dest="macro_scale", help="macro count scale factor")
        p.add_argument("--seed", type=int, default=0)

    def inference_flags(p: argparse.ArgumentParser) -> None:
        """Shared inference-broker knobs (place, serve, fleet)."""
        p.add_argument("--inference-broker", action="store_true",
                       dest="inference_broker",
                       help="route PolicyValueNet evaluations through one "
                            "shared batched broker process; concurrent "
                            "jobs' leaf batches coalesce into larger "
                            "forwards (per-job results stay bitwise-"
                            "identical to a private network)")
        p.add_argument("--inference-max-batch", type=int, default=64,
                       dest="inference_max_batch",
                       help="coalescing cap: flush once this many states "
                            "are pending (execution knob; never changes "
                            "results)")
        p.add_argument("--inference-coalesce-us", type=int, default=2000,
                       dest="inference_coalesce_us",
                       help="coalescing window in microseconds from the "
                            "first pending request (execution knob; "
                            "never changes results)")

    p_place = sub.add_parser("place", help="run the full flow on one circuit")
    common(p_place)
    p_place.add_argument("--preset", default="fast",
                         choices=["fast", "benchmark", "paper"])
    p_place.add_argument("--svg", default=None, help="write placement SVG here")
    p_place.add_argument("--ascii", action="store_true",
                         help="print an ASCII placement sketch")
    p_place.add_argument("--legal-cells", action="store_true",
                         dest="legal_cells",
                         help="snap cells onto rows after the final placement")
    p_place.add_argument("--terminal-workers", type=int, default=None,
                         dest="terminal_workers",
                         help="worker processes for terminal legalize-and-"
                              "place evaluations (results are bitwise-"
                              "identical for every count; default 1 = "
                              "in-process)")
    p_place.add_argument("--exact-topk", type=int, default=None,
                         dest="exact_topk",
                         help="two-tier terminal evaluation: run the exact "
                              "legalize-and-place pipeline only for leaves "
                              "ranking in the search's running top-K by "
                              "surrogate HPWL (default: every terminal "
                              "exact)")
    inference_flags(p_place)
    p_place.add_argument("--run-dir", default=None, dest="run_dir",
                         help="persist stage checkpoints, the run manifest, "
                              "and the event log into this directory")
    p_place.add_argument("--resume", action="store_true",
                         help="resume an interrupted run from --run-dir, "
                              "skipping completed stages")
    p_place.add_argument("--verify", action="store_true",
                         help="re-check the final placement with the "
                              "independent verifier (overlaps, bounds, "
                              "grid capacity, recomputed HPWL)")
    p_place.set_defaults(func=cmd_place)

    p_cmp = sub.add_parser("compare", help="flow vs all baselines on one circuit")
    common(p_cmp)
    p_cmp.add_argument("--preset", default="fast",
                       choices=["fast", "benchmark", "paper"])
    p_cmp.set_defaults(func=cmd_compare)

    p_suites = sub.add_parser("suites", help="list available circuits")
    p_suites.set_defaults(func=cmd_suites)

    p_bk = sub.add_parser("bookshelf", help="export a circuit as Bookshelf")
    common(p_bk)
    p_bk.add_argument("--out", required=True, help="output directory")
    p_bk.set_defaults(func=cmd_bookshelf)

    def service_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--service-dir", required=True, dest="service_dir",
                       help="service directory (inbox/, runs/, jobs.jsonl, ...)")

    def governor_flags(p: argparse.ArgumentParser) -> None:
        """Resource-governance knobs (execution policy: how much history
        the service keeps, never what any job computes — all excluded
        from config fingerprints).  Every quota defaults to None = that
        governance step stays inert."""
        p.add_argument("--disk-quota-bytes", type=int, default=None,
                       dest="disk_quota_bytes",
                       help="byte budget for the whole service dir; "
                            "crossing high-water triggers GC and sheds "
                            "new admissions with a structured "
                            "RESOURCE_PRESSURE rejection")
        p.add_argument("--mem-quota-bytes", type=int, default=None,
                       dest="mem_quota_bytes",
                       help="RSS ceiling; crossing it sheds admission "
                            "until usage drops")
        p.add_argument("--high-water", type=float, default=0.9,
                       dest="high_water",
                       help="fraction of the quota (or filesystem) at "
                            "which shedding engages and GC fires")
        p.add_argument("--low-water", type=float, default=0.75,
                       dest="low_water",
                       help="fraction below which shedding releases "
                            "(hysteresis; must be < high-water)")
        p.add_argument("--retention-runs", type=int, default=None,
                       dest="retention_runs",
                       help="terminal run dirs to keep (newest first; "
                            "QUARANTINED dirs are always kept); older "
                            "ones are summarized into the journal and "
                            "deleted")
        p.add_argument("--rejected-ttl", type=float, default=3600.0,
                       dest="rejected_ttl",
                       help="seconds before quarantined malformed "
                            "submissions in inbox/.rejected/ are swept")
        p.add_argument("--warm-quota-bytes", type=int, default=None,
                       dest="warm_quota_bytes",
                       help="warm-artifact cache byte budget (LRU "
                            "eviction down to fit)")
        p.add_argument("--terminal-cache-quota-bytes", type=int,
                       default=None, dest="terminal_cache_quota_bytes",
                       help="compact terminal_cache.jsonl once it "
                            "exceeds this many bytes")
        p.add_argument("--journal-quota-bytes", type=int, default=None,
                       dest="journal_quota_bytes",
                       help="compact jobs.jsonl once it exceeds this "
                            "many bytes (single daemon / offline only; "
                            "live fleets compact via 'repro gc' with "
                            "the shards stopped)")
        p.add_argument("--rundir-projection-bytes", type=int,
                       default=4 << 20, dest="rundir_projection_bytes",
                       help="projected size of one run dir; dispatch "
                            "pauses (jobs stay queued) while quota "
                            "headroom is below this")
        p.add_argument("--resource-sample-interval", type=float,
                       default=1.0, dest="resource_sample_interval",
                       help="seconds between disk/RSS samples on the "
                            "poll loop")

    p_serve = sub.add_parser("serve", help="run the placement service daemon")
    service_dir(p_serve)
    p_serve.add_argument("--workers", type=int, default=1,
                         help="concurrent placement jobs")
    p_serve.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                         help="admission limit; submissions beyond this are "
                              "rejected (FAILED with kind=Backpressure)")
    p_serve.add_argument("--poll-interval", type=float, default=0.2,
                         dest="poll_interval",
                         help="seconds between inbox/control polls")
    p_serve.add_argument("--drain", action="store_true",
                         help="exit once all submitted jobs are terminal "
                              "and the inbox is empty")
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         dest="max_seconds",
                         help="stop serving after this many seconds")
    p_serve.add_argument("--stall-seconds", type=float, default=None,
                         dest="stall_seconds",
                         help="watchdog threshold: a job whose progress "
                              "heartbeat is older than this is cancelled "
                              "with a structured StageStallError and "
                              "retried (default: no watchdog)")
    p_serve.add_argument("--max-retries", type=int, default=2,
                         dest="max_retries",
                         help="transient-failure retries (exponential "
                              "backoff) before a job is QUARANTINED")
    p_serve.add_argument("--backoff-base", type=float, default=0.5,
                         dest="backoff_base",
                         help="first retry delay in seconds; doubles per "
                              "attempt with deterministic jitter")
    p_serve.add_argument("--no-verify", action="store_true", dest="no_verify",
                         help="skip the independent result verification "
                              "normally run on every completed job")
    inference_flags(p_serve)
    governor_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser("submit", help="queue one placement job")
    service_dir(p_sub)
    common(p_sub)
    p_sub.add_argument("--preset", default="fast",
                       choices=["fast", "benchmark", "paper"])
    p_sub.add_argument("--priority", type=int, default=0,
                       help="higher dispatches first (FIFO within a priority)")
    p_sub.add_argument("--budget-seconds", type=float, default=None,
                       dest="budget_seconds",
                       help="whole-job wall-clock allowance; exceeding it "
                            "fails the job without affecting siblings")
    p_sub.add_argument("--terminal-workers", type=int, default=None,
                       dest="terminal_workers",
                       help="worker processes for terminal evaluation "
                            "inside this job")
    p_sub.add_argument("--set", action="append", default=None,
                       metavar="KNOB=VALUE",
                       help="dotted-path config override on top of the "
                            "preset (repeatable), e.g. --set "
                            "mcts.c_puct=2.5 --set zeta=10; values parse "
                            "as JSON, bare words as strings")
    p_sub.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="show jobs and service metrics")
    service_dir(p_status)
    p_status.add_argument("--job", default=None, help="show only this job")
    p_status.add_argument("--metrics", action="store_true",
                          help="also dump the full metrics.json snapshot")
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable output: jobs, counts, and "
                               "the latest metrics snapshot as one JSON "
                               "document")
    p_status.set_defaults(func=cmd_status)

    p_cancel = sub.add_parser("cancel", help="cancel a queued job")
    service_dir(p_cancel)
    p_cancel.add_argument("--job", default=None, help="job id to cancel")
    p_cancel.add_argument("--shutdown", action="store_true",
                          help="ask the daemon to stop after in-flight jobs")
    p_cancel.set_defaults(func=cmd_cancel)

    p_res = sub.add_parser("result", help="fetch one job's result record")
    service_dir(p_res)
    p_res.add_argument("--job", required=True, help="job id")
    p_res.add_argument("--wait", type=float, default=None,
                       help="poll up to this many seconds for the result")
    p_res.set_defaults(func=cmd_result)

    p_fleet = sub.add_parser(
        "fleet", help="sharded placement fleet over one shared service dir"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    def fleet_common(p: argparse.ArgumentParser) -> None:
        service_dir(p)
        p.add_argument("--lease-ttl", type=float, default=10.0,
                       dest="lease_ttl",
                       help="seconds before an unrefreshed job lease is "
                            "stealable; the crash-detection latency "
                            "(renewed every poll cycle)")
        p.add_argument("--poll-interval", type=float, default=0.2,
                       dest="poll_interval",
                       help="seconds between poll cycles (also the lease "
                            "renewal cadence)")
        p.add_argument("--workers", type=int, default=1,
                       help="concurrent placement jobs per shard")
        p.add_argument("--max-queue", type=int, default=64, dest="max_queue")
        p.add_argument("--stall-seconds", type=float, default=None,
                       dest="stall_seconds",
                       help="per-shard watchdog threshold (see 'serve')")
        p.add_argument("--max-retries", type=int, default=2,
                       dest="max_retries")
        p.add_argument("--backoff-base", type=float, default=0.5,
                       dest="backoff_base")
        p.add_argument("--no-verify", action="store_true", dest="no_verify")
        p.add_argument("--drain", action="store_true",
                       help="exit once every job is terminal and the "
                            "shared inbox is empty")
        p.add_argument("--max-seconds", type=float, default=None,
                       dest="max_seconds")
        inference_flags(p)
        governor_flags(p)

    p_fshard = fleet_sub.add_parser(
        "shard", help="run one shard daemon in the foreground"
    )
    fleet_common(p_fshard)
    p_fshard.add_argument("--shard", default=None,
                          help="shard id (stable id lets a replacement "
                               "daemon supersede its dead predecessor's "
                               "leases immediately; default: random)")
    p_fshard.set_defaults(func=cmd_fleet_shard)

    p_fserve = fleet_sub.add_parser(
        "serve", help="boot N shard daemons and wait for them"
    )
    fleet_common(p_fserve)
    p_fserve.add_argument("--shards", type=int, default=3,
                          help="number of shard daemon processes")
    p_fserve.set_defaults(func=cmd_fleet_serve)

    p_fstatus = fleet_sub.add_parser(
        "status", help="fleet-wide jobs, live leases, merged metrics"
    )
    service_dir(p_fstatus)
    p_fstatus.add_argument("--json", action="store_true",
                           help="dump the machine-readable status")
    p_fstatus.set_defaults(func=cmd_fleet_status)

    p_fdrain = fleet_sub.add_parser(
        "drain", help="ask every shard to exit after in-flight work"
    )
    service_dir(p_fdrain)
    p_fdrain.set_defaults(func=cmd_fleet_drain)

    p_study = sub.add_parser(
        "study",
        help="design-space-exploration studies over the service "
             "(sweep spec -> warm-aware job DAG -> Pareto report)",
    )
    study_sub = p_study.add_subparsers(dest="study_command", required=True)

    def study_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--study-dir", required=True, dest="study_dir",
                       help="study directory (spec.json, journal.jsonl, "
                            "report.json, records/)")
        p.add_argument("--spec", default=None,
                       help="sweep spec file (.json or .toml); required "
                            "the first time, optional afterwards (the "
                            "study dir remembers its spec)")

    p_srun = study_sub.add_parser(
        "run", help="expand the spec and drive every point to a terminal "
                    "state (safe to re-run after a kill; DONE points are "
                    "never resubmitted)"
    )
    study_dir(p_srun)
    service_dir(p_srun)
    p_srun.add_argument("--serve", action="store_true",
                        help="run an inline single-host daemon for the "
                             "study's duration instead of requiring an "
                             "external 'repro serve'/'repro fleet serve'")
    p_srun.add_argument("--workers", type=int, default=1,
                        help="inline daemon worker slots (with --serve)")
    p_srun.add_argument("--poll", type=float, default=0.25,
                        help="seconds between scheduling cycles")
    p_srun.add_argument("--max-seconds", type=float, default=None,
                        dest="max_seconds",
                        help="return after this long even if incomplete "
                             "(the study resumes on the next run)")
    p_srun.set_defaults(func=cmd_study_run)

    p_sstat = study_sub.add_parser(
        "status", help="show per-point and per-fingerprint-group progress"
    )
    study_dir(p_sstat)
    p_sstat.add_argument("--service-dir", default=None, dest="service_dir",
                         help="overlay live job states from this service "
                              "directory")
    p_sstat.add_argument("--json", action="store_true",
                         help="machine-readable status")
    p_sstat.set_defaults(func=cmd_study_status)

    p_srep = study_sub.add_parser(
        "report", help="consolidate results: Pareto front, per-knob "
                       "sensitivity, best config, warm-sharing evidence"
    )
    study_dir(p_srep)
    service_dir(p_srep)
    p_srep.add_argument("--json", action="store_true",
                        help="print the full report JSON instead of the "
                             "rendered summary")
    p_srep.set_defaults(func=cmd_study_report)

    p_gc = sub.add_parser(
        "gc",
        help="collect a service directory offline: retire old run dirs, "
             "evict/compact caches, compact the journal",
    )
    service_dir(p_gc)
    governor_flags(p_gc)
    p_gc.add_argument("--emergency", action="store_true",
                      help="collect everything collectible now "
                           "(retention 0, both compactions), regardless "
                           "of quotas")
    p_gc.add_argument("--dry-run", action="store_true", dest="dry_run",
                      help="report what would be collected without "
                           "touching anything")
    p_gc.add_argument("--json", action="store_true",
                      help="machine-readable summary + usage breakdown")
    p_gc.set_defaults(func=cmd_gc)

    p_doc = sub.add_parser("doctor", help="validate a run directory offline")
    p_doc.add_argument("run_dir", nargs="?", default=None,
                       help="run directory to validate (omit with "
                            "--resources)")
    p_doc.add_argument("--resources", action="store_true",
                       help="report a service directory's disk/memory "
                            "footprint instead (needs --service-dir; "
                            "exits 1 when over --disk-quota-bytes)")
    p_doc.add_argument("--service-dir", default=None, dest="service_dir",
                       help="service directory for --resources")
    p_doc.add_argument("--disk-quota-bytes", type=int, default=None,
                       dest="disk_quota_bytes",
                       help="quota to judge --resources usage against")
    p_doc.add_argument("--circuit", default=None,
                       help="rebuild this suite circuit to additionally "
                            "verify the final placement itself")
    p_doc.add_argument("--aux", default=None,
                       help="Bookshelf .aux of the design (same purpose)")
    p_doc.add_argument("--scale", type=float, default=0.01)
    p_doc.add_argument("--macro-scale", type=float, default=0.08,
                       dest="macro_scale")
    p_doc.add_argument("--zeta", type=int, default=None,
                       help="grid side length for the capacity check "
                            "(needs --circuit/--aux)")
    p_doc.set_defaults(func=cmd_doctor)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection drill over a throwaway service"
    )
    p_chaos.add_argument("--out", default=None,
                         help="keep the drill's service dirs here "
                              "(default: a temp dir, removed afterwards)")
    p_chaos.add_argument("--report", default=None,
                         help="write the machine-readable drill report "
                              "(JSON) to this path")
    p_chaos.add_argument("--stall-seconds", type=float, default=0.2,
                         dest="stall_seconds",
                         help="watchdog threshold used by the stall scenario")
    p_chaos.add_argument("--max-seconds", type=float, default=60.0,
                         dest="max_seconds",
                         help="per-scenario wall-clock cap (the no-hang gate)")
    p_chaos.add_argument("--fleet", action="store_true",
                         help="run the multi-process shard-kill drill "
                              "instead of the single-daemon scenarios")
    p_chaos.add_argument("--governed", action="store_true",
                         help="run the resource-pressure drill: a fleet "
                              "inside a tight synthetic disk quota with "
                              "injected ENOSPC — gates on GC keeping "
                              "every answer bit-identical and zero "
                              "daemon deaths")
    p_chaos.add_argument("--shards", type=int, default=3,
                         help="fleet drill: shard daemon processes")
    p_chaos.add_argument("--jobs", type=int, default=6,
                         help="fleet drill: jobs besides the poison job")
    p_chaos.add_argument("--kills", type=int, default=2,
                         help="fleet drill: whole-shard SIGKILLs")
    p_chaos.add_argument("--lease-ttl", type=float, default=1.5,
                         dest="lease_ttl",
                         help="fleet drill: lease TTL (crash-detection "
                              "latency)")
    p_chaos.set_defaults(func=cmd_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Structured placement failures map to distinct exit codes (see
    :mod:`repro.runtime.errors`): 10 generic, 11 calibration, 12 training
    divergence, 13 solver infeasibility, 14 stage timeout, 15 injected
    fault, 16 stage stall, 17 artifact corruption, 18 verification
    failure, 19 resource exhaustion (disk full even after emergency GC),
    64 usage.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except PlacementError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except BrokenPipeError:
        # Downstream closed early (`repro result | head`); not an error,
        # but Python would print a traceback when flushing at exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
