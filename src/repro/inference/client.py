"""Client-side adapter: the evaluate/evaluate_batch surface, broker-backed.

:class:`InferenceClient` wraps a :class:`~repro.agent.network.PolicyValueNet`
and an optional :class:`~repro.inference.broker.InferenceBroker` handle
behind the exact interface MCTS virtual-loss waves and RL ``n_envs``
rollouts already consume — both plug in unchanged.

The split of work keeps broker-served and in-process results literally
the same code: the client packs states
(:meth:`~repro.agent.network.PolicyValueNet.pack_planes_batch`) and
ships the raw tensor; the broker answers with raw ``(logits, value)``
rows from a fixed-tile forward; the client applies the identical masking
tail (:meth:`~repro.agent.network.PolicyValueNet.policy_masks` +
``masked_softmax`` + float64 cast) that ``evaluate_batch`` itself uses.
When the broker is absent, degraded, or mid-crash, the client runs
``evaluate_batch(states, tile=INFERENCE_TILE)`` locally — the same tiled
numerics, so a broker death changes wall-clock, never results.
"""

from __future__ import annotations

import uuid
from dataclasses import asdict

import numpy as np

from repro.agent.network import PlaneView
from repro.inference.broker import (
    INFERENCE_TILE,
    BrokerUnavailable,
    export_params,
    weights_fingerprint,
)
from repro.utils.events import EventLog


class InferenceClient:
    """Evaluate/evaluate_batch against a shared broker, with fallback.

    Args:
        network: the caller's network — source of weights for the broker
            replica and the in-process fallback evaluator.
        broker: the shared :class:`InferenceBroker` handle; ``None``
            evaluates in-process (tiled) unconditionally — the
            "private-network path" every broker result must match
            bitwise.
        events: ``degradation`` events (first fallback after a broker
            loss) land here.
        publishable: True for RL trainers whose weights change: the
            client gets a unique namespace and :meth:`publish` bumps the
            weight epoch.  False (static weights, e.g. MCTS) derives the
            namespace from a content hash, so jobs running identical
            weights share one broker replica and coalesce into the same
            batches.
    """

    def __init__(
        self,
        network,
        broker=None,
        events: EventLog | None = None,
        publishable: bool = False,
    ) -> None:
        self.network = network
        self.broker = broker
        self.events = events if events is not None else EventLog()
        self.publishable = publishable
        self.tile = INFERENCE_TILE
        self.client_id = "client-" + uuid.uuid4().hex[:12]
        self.epoch = 0
        self.n_broker = 0
        self.n_local = 0
        self._namespace = (
            "trainer-" + uuid.uuid4().hex[:12] if publishable else None
        )
        self._registered = False
        self._degraded_logged = False
        self._said_hello = False

    # -- weight versioning -----------------------------------------------------
    @property
    def namespace(self) -> str:
        """Weight namespace; static clients hash lazily so the fingerprint
        reflects the weights at first use (e.g. post-training), not at
        construction."""
        if self._namespace is None:
            self._namespace = weights_fingerprint(self.network)
        return self._namespace

    def _reship(self) -> None:
        self.broker.register(
            self.namespace,
            self.epoch,
            asdict(self.network.config),
            export_params(self.network),
        )

    def publish(self) -> None:
        """Advance the weight epoch and ship the current parameters.

        RL trainers call this after every (guarded) update — including
        rollback restores — so the broker replica can never serve a
        half-written version: requests pin the epoch they expect and the
        replica swaps atomically between batches.  A no-op without a
        live broker (the in-process fallback always reads the live
        network).
        """
        if not self.publishable:
            raise RuntimeError("publish() requires a publishable client")
        self.epoch += 1
        self._registered = False
        if self.broker is not None and self.broker.available:
            try:
                self._reship()
                self._registered = True
            except BrokerUnavailable as exc:
                self._log_degraded("publish", exc)

    # -- evaluation ------------------------------------------------------------
    def evaluate(
        self, s_p: np.ndarray, s_a: np.ndarray, t: int, total_steps: int
    ) -> tuple[np.ndarray, float]:
        """Single-state inference, delegating to :meth:`evaluate_batch`."""
        probs, values = self.evaluate_batch(
            [PlaneView(s_p, s_a, t, total_steps)]
        )
        return probs[0], float(values[0])

    def evaluate_batch(self, states) -> tuple[np.ndarray, np.ndarray]:
        """Batched inference: (masked probabilities (B, ζ²), values (B,)).

        Broker-served when possible, in-process (same tile) otherwise —
        bitwise-identical either way.
        """
        if len(states) == 0 or self.broker is None:
            return self.network.evaluate_batch(states, tile=self.tile)
        if self.broker.available:
            try:
                if not self._said_hello:
                    self.broker.hello(self.client_id)
                    self._said_hello = True
                if not self._registered:
                    self._reship()
                    self._registered = True
                x = self.network.pack_planes_batch(states)
                logits, v = self.broker.eval(
                    self.namespace, self.epoch, x, reship=self._reship
                )
                self.n_broker += 1
                from repro.nn.functional import masked_softmax

                probs = masked_softmax(
                    logits, self.network.policy_masks(states), axis=1
                )
                return probs, np.asarray(v, dtype=np.float64)
            except BrokerUnavailable as exc:
                self._log_degraded("evaluate", exc)
        self.n_local += 1
        return self.network.evaluate_batch(states, tile=self.tile)

    def _log_degraded(self, phase: str, exc: Exception) -> None:
        if self._degraded_logged:
            return
        self._degraded_logged = True
        self.events.emit(
            "degradation",
            solver="inference_client",
            phase=phase,
            fallback="in_process",
            error=str(exc),
        )

    def close(self) -> None:
        """Deregister from the broker (shrinks its coalescing quorum)."""
        if (
            self.broker is not None
            and self._said_hello
            and self.broker.available
        ):
            self.broker.goodbye(self.client_id)
        self._said_hello = False
