"""Inference broker: a spawn-context process batching cross-job forwards.

The broker owns the :class:`~repro.agent.network.PolicyValueNet` replicas
and drains a single request queue with a deadline-based coalescing
window: requests accumulate until ``max_batch`` states are pending or
``coalesce_us`` microseconds have passed since the first pending arrival
— whichever comes first — then flush as one fixed-tile forward per
weight version.  Coalescing only engages while more than one client is
registered; a lone job pays no added latency.

Weight versions are ``(namespace, epoch)`` pairs.  Static consumers
(MCTS search) use a content-hash namespace, so concurrent jobs running
identical weights share one replica *and one batch*; RL trainers use a
unique namespace and bump the epoch on every publish, so an update can
never produce a torn read — a request pins the epoch it wants and a
replica is replaced atomically between batches.  A request naming an
unknown version (broker respawned, replica evicted) is answered with an
``unknown_weights`` error and the client re-ships — self-healing instead
of stateful handshakes.

Lifecycle mirrors :class:`~repro.parallel.pool.TerminalEvaluationPool`:
spawn failures degrade to in-process evaluation with a ``degradation``
event; a broker that dies mid-run is respawned up to ``respawn_limit``
times before the handle permanently degrades; the ``stats()`` round-trip
doubles as a heartbeat.  The ``inference.worker_kill`` fault site
hard-kills the live broker (``os._exit``) so crash drills can exercise
every path deterministically.

The network interface the broker consumes is deliberately narrow —
construct from a config dict, load a flat parameter dict, run
``forward_eval_tiled`` — so an alternative (torch/GPU) backend can slot
in behind the same protocol later.
"""

from __future__ import annotations

import hashlib
import itertools
import queue
import threading
import time
from dataclasses import asdict

import numpy as np

from repro.runtime import faults
from repro.utils.events import EventLog

#: fixed forward-batch row count for every broker-mode evaluation.  BLAS
#: results are bitwise stable only at a fixed GEMM row count, so *all*
#: broker-mode forwards (broker, client fallback, private baseline) run
#: as zero-padded 32-row chunks — the BENCH_pr2 throughput knee.  This is
#: deliberately independent of the ``max_batch``/``coalesce_us`` knobs,
#: which therefore never influence numerics.
INFERENCE_TILE = 32

#: broker replicas kept per process before the oldest namespace is
#: dropped (clients self-heal via ``unknown_weights`` re-ship)
MAX_NAMESPACES = 16


class BrokerUnavailable(RuntimeError):
    """The broker cannot serve this request; evaluate in-process."""


# -- weight shipping -----------------------------------------------------------


def export_params(net) -> dict:
    """Flatten a network's parameters + BN stats into an array dict.

    Same ``p{i}``/``bn{j}_*`` keying as
    :func:`repro.nn.serialization.save_params`, but in-memory (copies, so
    a trainer's next step cannot mutate an in-flight shipment).
    """
    from repro.nn.serialization import _batchnorms

    arrays = {f"p{i}": p.data.copy() for i, p in enumerate(net.parameters())}
    for j, bn in enumerate(_batchnorms(net)):
        arrays[f"bn{j}_mean"] = bn.running_mean.copy()
        arrays[f"bn{j}_var"] = bn.running_var.copy()
    return arrays


def import_params(net, arrays: dict) -> None:
    """Load an :func:`export_params` dict into *net* (shapes must match)."""
    from repro.nn.serialization import _batchnorms

    for i, p in enumerate(net.parameters()):
        p.data[...] = arrays[f"p{i}"]
    for j, bn in enumerate(_batchnorms(net)):
        bn.running_mean[...] = arrays[f"bn{j}_mean"]
        bn.running_var[...] = arrays[f"bn{j}_var"]


def weights_fingerprint(net) -> str:
    """Content hash of a network's topology + current weights.

    Static clients use this as their broker namespace, so any number of
    jobs running identical weights resolve to the same replica — which
    is what makes their requests coalescible into one batch.
    """
    h = hashlib.sha256()
    h.update(repr(sorted(asdict(net.config).items())).encode())
    for p in net.parameters():
        h.update(np.ascontiguousarray(p.data).tobytes())
    from repro.nn.serialization import _batchnorms

    for bn in _batchnorms(net):
        h.update(np.ascontiguousarray(bn.running_mean).tobytes())
        h.update(np.ascontiguousarray(bn.running_var).tobytes())
    return "net-" + h.hexdigest()[:16]


# -- broker process (child side) -----------------------------------------------


def _percentile(window: list, q: float) -> float:
    if not window:
        return 0.0
    ordered = sorted(window)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return float(ordered[idx])


def _broker_main(request_q, reply_q, max_batch: int, coalesce_us: int) -> None:
    """Broker process entry point: drain, coalesce, forward, reply."""
    import os

    from repro.agent.network import NetworkConfig, PolicyValueNet

    networks: dict[str, tuple[int, object]] = {}  # namespace -> (epoch, net)
    clients: set = set()
    started = time.monotonic()
    stats = {
        "requests": 0,
        "states": 0,
        "batches": 0,
        "coalesced_batches": 0,
        "tile_forwards": 0,
        "unknown_weights": 0,
        "registers": 0,
    }
    batch_window: list[int] = []  # states per forward group (last 512)
    wait_window: list[float] = []  # request wait in µs (last 512)

    def observe(window: list, value) -> None:
        window.append(value)
        if len(window) > 512:
            del window[0]

    def snapshot() -> dict:
        try:
            depth = request_q.qsize()
        except (NotImplementedError, OSError):
            depth = -1
        return {
            **stats,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - started, 3),
            "active_clients": len(clients),
            "namespaces": len(networks),
            "queue_depth": depth,
            "max_batch": max_batch,
            "coalesce_us": coalesce_us,
            "tile": INFERENCE_TILE,
            "batch_size_mean": (
                float(np.mean(batch_window)) if batch_window else 0.0
            ),
            "batch_size_max": max(batch_window, default=0),
            "batch_size_p50": _percentile(batch_window, 0.50),
            "batch_size_p90": _percentile(batch_window, 0.90),
            "wait_us_mean": (
                float(np.mean(wait_window)) if wait_window else 0.0
            ),
            "wait_us_max": max(wait_window, default=0.0),
            "wait_us_p90": _percentile(wait_window, 0.90),
        }

    def handle_control(msg) -> bool:
        """Process a non-eval message; returns False if *msg* is an eval."""
        kind = msg[0]
        if kind == "eval":
            return False
        if kind == "hello":
            clients.add(msg[1])
        elif kind == "goodbye":
            clients.discard(msg[1])
        elif kind == "register":
            _, namespace, epoch, cfg_dict, arrays = msg
            stats["registers"] += 1
            entry = networks.pop(namespace, None)
            if entry is None:
                net = PolicyValueNet(NetworkConfig(**cfg_dict))
                net.eval()
            else:
                net = entry[1]
            import_params(net, arrays)
            networks[namespace] = (int(epoch), net)
            while len(networks) > MAX_NAMESPACES:
                networks.pop(next(iter(networks)))
        elif kind == "stats":
            reply_q.put(("stats", msg[1], snapshot()))
        elif kind == "die":
            os._exit(86)  # the inference.worker_kill fault site
        elif kind == "stop":
            raise SystemExit(0)
        return True

    def flush(pending: list) -> None:
        """Answer every pending eval with one tiled forward per version."""
        stats["batches"] += 1
        groups: dict[tuple, list] = {}
        for item in pending:
            groups.setdefault((item[2], item[3]), []).append(item)
        now = time.monotonic()
        for (namespace, epoch), items in groups.items():
            entry = networks.get(namespace)
            if entry is None or entry[0] != epoch:
                stats["unknown_weights"] += len(items)
                for _, rid, *_rest in items:
                    reply_q.put(("error", rid, "unknown_weights"))
                continue
            net = entry[1]
            x = np.concatenate([item[4] for item in items], axis=0)
            logits, v = net.forward_eval_tiled(x, INFERENCE_TILE)
            stats["tile_forwards"] += -(-len(x) // INFERENCE_TILE)
            stats["states"] += len(x)
            observe(batch_window, len(x))
            if len(items) > 1:
                stats["coalesced_batches"] += 1
            offset = 0
            for arrival, rid, _ns, _ep, xi in items:
                rows = len(xi)
                reply_q.put(
                    ("result", rid, logits[offset : offset + rows],
                     v[offset : offset + rows])
                )
                offset += rows
                observe(wait_window, (now - arrival) * 1e6)

    pending: list = []  # (arrival, request_id, namespace, epoch, x)
    pending_states = 0
    try:
        while True:
            if not pending:
                try:
                    msg = request_q.get(timeout=0.25)
                except queue.Empty:
                    continue
                if handle_control(msg):
                    continue
                pending.append((time.monotonic(),) + tuple(msg[1:]))
                pending_states = len(pending[0][4])
            # Coalescing window: only worth waiting when several clients
            # could contribute; a lone job flushes immediately.
            deadline = pending[0][0] + coalesce_us / 1e6
            while len(clients) > 1 and pending_states < max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    msg = request_q.get(timeout=remaining)
                except queue.Empty:
                    break
                if handle_control(msg):
                    continue
                pending.append((time.monotonic(),) + tuple(msg[1:]))
                pending_states += len(pending[-1][4])
            stats["requests"] += len(pending)
            flush(pending)
            pending = []
            pending_states = 0
    except (SystemExit, KeyboardInterrupt):
        pass


# -- parent-side handle --------------------------------------------------------


class _Slot:
    """One in-flight request's rendezvous point."""

    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload = None


class InferenceBroker:
    """Parent-side handle owning the broker process and its channels.

    One handle serves every client thread of a process (all scheduler
    slots of a daemon share it); a dispatcher thread routes replies from
    the single reply queue to per-request slots, so concurrent clients
    block only on their own request.

    Args:
        max_batch: coalescing cap — flush once this many states pend.
        coalesce_us: coalescing window in microseconds, measured from the
            first pending request's arrival.
        events: degradation events (spawn failure, death, respawn) land
            here.
        respawn_limit: broker restarts attempted before the handle
            permanently degrades (clients then evaluate in-process).
        request_timeout: seconds a client waits for a reply before the
            broker is presumed hung and treated as dead.
    """

    def __init__(
        self,
        max_batch: int = 64,
        coalesce_us: int = 2000,
        events: EventLog | None = None,
        respawn_limit: int = 1,
        request_timeout: float = 30.0,
    ) -> None:
        self.max_batch = max(1, int(max_batch))
        self.coalesce_us = max(0, int(coalesce_us))
        self.events = events if events is not None else EventLog()
        self.respawn_limit = max(0, int(respawn_limit))
        self.request_timeout = float(request_timeout)
        self.respawns = 0
        self._lock = threading.RLock()
        self._slots: dict[int, _Slot] = {}
        self._slots_lock = threading.Lock()
        self._rid = itertools.count(1)
        self._proc = None
        self._request_q = None
        self._reply_q = None
        self._dispatcher = None
        self._epoch = 0  # process generation, for failure dedup
        self._broken = False
        self._closed = False

    @property
    def available(self) -> bool:
        """True while broker-served evaluation is worth attempting."""
        return not self._broken and not self._closed

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "InferenceBroker":
        """Spawn the broker process (idempotent); degrade on failure."""
        with self._lock:
            if self._proc is not None or self._broken or self._closed:
                return self
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("spawn")
                if self._request_q is None:
                    self._request_q = ctx.Queue()
                    self._reply_q = ctx.Queue()
                self._proc = ctx.Process(
                    target=_broker_main,
                    args=(self._request_q, self._reply_q,
                          self.max_batch, self.coalesce_us),
                    daemon=True,
                )
                self._proc.start()
                self._epoch += 1
            except Exception as exc:
                self._proc = None
                self._broken = True
                self.events.emit(
                    "degradation",
                    solver="inference_broker",
                    phase="spawn",
                    fallback="in_process",
                    error=str(exc),
                )
                return self
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, daemon=True,
                    name="inference-dispatch",
                )
                self._dispatcher.start()
        return self

    def _dispatch_loop(self) -> None:
        while not self._closed:
            try:
                msg = self._reply_q.get(timeout=0.25)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                return
            rid = msg[1]
            with self._slots_lock:
                slot = self._slots.pop(rid, None)
            if slot is not None:
                slot.payload = msg
                slot.event.set()

    def _handle_failure(self, phase: str, error: str, epoch: int) -> None:
        """Broker died or hung: bounded respawn, then permanent fallback."""
        with self._lock:
            if self._broken or self._closed or epoch != self._epoch:
                return
            proc, self._proc = self._proc, None
            if proc is not None:
                try:
                    proc.terminate()
                    proc.join(timeout=2.0)
                except Exception:
                    pass
            if self.respawns < self.respawn_limit:
                self.respawns += 1
                self.events.emit(
                    "degradation",
                    solver="inference_broker",
                    phase=phase,
                    fallback="respawn",
                    respawn=self.respawns,
                    error=error,
                )
                self.start()
                if self._proc is not None:
                    return
            self._broken = True
            self.events.emit(
                "degradation",
                solver="inference_broker",
                phase=phase,
                fallback="in_process",
                error=error,
            )

    def close(self) -> None:
        """Stop the broker process; further evaluation runs in-process."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            proc, self._proc = self._proc, None
        if proc is not None:
            try:
                self._request_q.put(("stop",))
                proc.join(timeout=3.0)
            except Exception:
                pass
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        with self._slots_lock:
            for slot in self._slots.values():
                slot.event.set()
            self._slots.clear()

    def __enter__(self) -> "InferenceBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol --------------------------------------------------------------
    def _put(self, msg, epoch: int) -> bool:
        try:
            self._request_q.put(msg)
            return True
        except Exception as exc:
            self._handle_failure("send", str(exc), epoch)
            return False

    def hello(self, client_id: str) -> None:
        """Register a client (enables the coalescing window at >1)."""
        if self.available and self._proc is not None:
            self._put(("hello", client_id), self._epoch)

    def goodbye(self, client_id: str) -> None:
        if self.available and self._proc is not None:
            self._put(("goodbye", client_id), self._epoch)

    def register(self, namespace: str, epoch: int, cfg_dict: dict,
                 arrays: dict) -> None:
        """Ship one weight version (fire-and-forget; replicas replace
        atomically between batches, so a publish can never tear)."""
        if not self.available:
            raise BrokerUnavailable("broker degraded")
        self.start()
        if self._proc is None:
            raise BrokerUnavailable("broker failed to start")
        if not self._put(("register", namespace, int(epoch), cfg_dict,
                          arrays), self._epoch):
            raise BrokerUnavailable("broker send failed")

    def kill_worker(self) -> None:
        """Hard-kill the live broker (the ``inference.worker_kill`` drill)."""
        with self._lock:
            if self._proc is not None:
                self._put(("die",), self._epoch)

    def _round_trip(self, make_msg, timeout: float):
        """Send a request carrying a fresh id; wait for its reply slot."""
        if not self.available:
            raise BrokerUnavailable("broker degraded")
        self.start()
        with self._lock:
            epoch = self._epoch
            proc = self._proc
        if proc is None:
            raise BrokerUnavailable("broker failed to start")
        rid = next(self._rid)
        slot = _Slot()
        with self._slots_lock:
            self._slots[rid] = slot
        try:
            if not self._put(make_msg(rid), epoch):
                raise BrokerUnavailable("broker send failed")
            deadline = time.monotonic() + timeout
            while not slot.event.wait(timeout=0.05):
                if time.monotonic() >= deadline:
                    self._handle_failure("timeout", "request timed out",
                                         epoch)
                    raise BrokerUnavailable("request timed out")
                if not proc.is_alive():
                    # Give the dispatcher a beat to drain already-queued
                    # replies, then declare the broker dead.
                    if slot.event.wait(timeout=0.2):
                        break
                    self._handle_failure(
                        "death", f"broker exited {proc.exitcode}", epoch
                    )
                    raise BrokerUnavailable("broker died")
            return slot.payload
        finally:
            with self._slots_lock:
                self._slots.pop(rid, None)

    def eval(self, namespace: str, epoch: int, x: np.ndarray,
             reship=None) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate packed states *x* under weight version
        ``(namespace, epoch)``; returns raw ``(logits, v)`` rows.

        ``unknown_weights`` replies invoke *reship* (a callable
        re-registering the version) and retry — the self-heal path for a
        respawned broker or an evicted replica.  Any unrecoverable
        condition raises :class:`BrokerUnavailable`; the caller falls
        back to the bitwise-identical in-process tiled path.
        """
        if faults.should_fire("inference.worker_kill"):
            self.kill_worker()
        last = "unknown_weights"
        for _attempt in range(3):
            reply = self._round_trip(
                lambda rid: ("eval", rid, namespace, int(epoch), x),
                self.request_timeout,
            )
            if reply is None:
                raise BrokerUnavailable("broker closed")
            if reply[0] == "result":
                return reply[2], reply[3]
            last = reply[2] if len(reply) > 2 else "error"
            if last == "unknown_weights" and reship is not None:
                reship()
                continue
            break
        raise BrokerUnavailable(f"broker error: {last}")

    def stats(self, timeout: float = 5.0) -> dict | None:
        """Broker-side counters/histograms; doubles as the heartbeat.

        Returns None when the broker is unavailable (degraded handles
        still report their parent-side state via :meth:`handle_stats`).
        """
        try:
            reply = self._round_trip(lambda rid: ("stats", rid), timeout)
        except BrokerUnavailable:
            return None
        if reply is None or reply[0] != "stats":
            return None
        return {**reply[2], **self.handle_stats()}

    def handle_stats(self) -> dict:
        """Parent-side lifecycle counters (valid even when degraded)."""
        return {
            "respawns": self.respawns,
            "broken": self._broken,
            "process_epoch": self._epoch,
        }
