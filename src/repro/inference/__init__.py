"""Shared inference: one batched :class:`PolicyValueNet` serving many jobs.

BENCH_pr2 put the network's throughput knee at B=32 (7657 forwards/s vs
1809 at B=1), yet every service/fleet job historically owned a private
network and submitted ``leaf_batch``-sized batches — N concurrent jobs
never reached the knee.  This package moves the network into a broker
process that coalesces evaluation requests from every concurrent job into
large cross-job batches:

- :class:`~repro.inference.broker.InferenceBroker` — parent-side handle
  for the spawn-context broker process (weights shipped once per
  version, bounded respawn, graceful in-process fallback with a
  degradation event — the same lifecycle discipline as
  :class:`~repro.parallel.pool.TerminalEvaluationPool`);
- :class:`~repro.inference.client.InferenceClient` — drop-in
  evaluate/evaluate_batch replacement that MCTS virtual-loss waves and
  RL ``n_envs`` rollouts consume unchanged.

**Bitwise contract.**  Every broker-mode forward — broker-served, client
fallback, and the private-network baseline — runs as fixed
:data:`INFERENCE_TILE`-row zero-padded chunks
(:meth:`~repro.agent.network.PolicyValueNet.forward_eval_tiled`), which
makes each state's result invariant to how requests were coalesced.  Per
job, results are bitwise-identical at every concurrency, across broker
crashes, and under the degraded in-process path.  The broker *off*
default keeps the historical untiled forward byte-for-byte.
"""

from repro.inference.broker import (
    INFERENCE_TILE,
    BrokerUnavailable,
    InferenceBroker,
)
from repro.inference.client import InferenceClient

__all__ = [
    "INFERENCE_TILE",
    "BrokerUnavailable",
    "InferenceBroker",
    "InferenceClient",
]
