"""Parallel pure terminal evaluation.

Built on the purity guarantee of :meth:`MacroLegalizer.legalize` (every
call rewinds to the canonical start state), this package ships the
legalize-and-place inner loop to a persistent process pool
(:class:`TerminalEvaluationPool`) and memoizes its results across runs
(:class:`TerminalCache`).  Both degrade gracefully: a dead or absent pool
falls back to in-process evaluation with identical (bitwise) results.
"""

from repro.parallel.cache import TerminalCache, environment_fingerprint
from repro.parallel.pool import TerminalEvaluationPool

__all__ = [
    "TerminalCache",
    "TerminalEvaluationPool",
    "environment_fingerprint",
]
