"""Persistent worker pool for terminal legalize-and-place evaluations.

Terminal evaluation is the dominant cost of both RL pre-training and MCTS
(BENCH_pr2: ``seconds_terminal`` ≈ 73% of search wall-clock).  Because the
purity fix made ``evaluate_assignment`` a deterministic function of the
assignment alone, the work can move off-process: a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor` receives the pickled
coarse netlist **once** at pool creation (the initializer rebuilds a full
environment per worker) and then only assignment tuples travel per task.

Guarantees:

- **Bitwise equivalence** — every worker legalizes from the same canonical
  start state as the parent (the pool captures it before pickling), so a
  pooled evaluation returns exactly the float the parent would compute.
- **Adaptive sizing** — requesting more workers than the host has cores
  makes the pool *slower* (BENCH_pr3 recorded 0.21× at ``workers=4`` on
  a 1-core host: four interpreters time-slicing one core plus IPC), so
  the pool clamps its worker count to ``os.cpu_count()`` and falls back
  in-process entirely when the clamp leaves a single worker — the pool
  would only add pickling overhead to a serial execution.  Both
  adjustments emit a ``degradation`` event (``phase="sizing"``) so the
  clamp is observable, and ``clamp=False`` restores the literal request
  (benchmarks measuring oversubscription, and fault drills that need a
  real pool on small CI hosts, opt out).
- **Graceful degradation** — ``workers <= 1`` or a failed spawn fall back
  to in-process evaluation with a ``degradation`` event.  A pool that
  dies mid-run (``BrokenProcessPool``) is **respawned** up to
  ``respawn_limit`` times — a crashed worker costs one degradation event
  and a restart, not parallelism for the rest of the run — and only when
  the limit is exhausted does the pool permanently degrade in-process.
  Every failed evaluation re-runs in-process, so results are unchanged
  either way (terminal evaluation is pure).  Fault sites ``pool.spawn``,
  ``pool.submit``, and ``pool.worker_kill`` (hard ``os._exit`` inside a
  live worker) let tests drill each path deterministically.
"""

from __future__ import annotations

import pickle
import time

from repro.runtime import faults
from repro.runtime.errors import PlacementError
from repro.utils.events import EventLog

#: per-worker environment, built once by :func:`_init_worker`
_WORKER_ENV = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the problem and build a private env."""
    global _WORKER_ENV
    from repro.env.placement_env import MacroGroupPlacementEnv
    from repro.legalize.pipeline import IncrementalMacroLegalizer, MacroLegalizer

    spec = pickle.loads(payload)
    # Workers mirror the parent's legalizer class so their per-process
    # caches amortize the same way (results are bitwise-identical either
    # way; "incremental" is deliberately absent from the environment
    # fingerprint, so terminal-cache keys do not change).
    cls = IncrementalMacroLegalizer if spec.get("incremental") else MacroLegalizer
    legalizer = cls(**spec["legalizer"])
    _WORKER_ENV = MacroGroupPlacementEnv(
        spec["coarse"],
        legalizer=legalizer,
        cell_place_iters=spec["cell_place_iters"],
    )


def _evaluate_assignment(assignment: tuple[int, ...]) -> float:
    """Task function: one terminal evaluation in the worker's private env."""
    return _WORKER_ENV.evaluate_assignment(list(assignment))


def _kill_worker() -> None:
    """Task function behind the ``pool.worker_kill`` fault site: die hard,
    exactly like an OOM-killed or segfaulted worker would."""
    import os

    os._exit(86)


class _ImmediateResult:
    """Future-alike wrapping an already-computed in-process value."""

    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        self._value = value

    def result(self) -> float:
        return self._value


class _PooledResult:
    """Future-alike that falls back in-process if the pool died.

    Remembers the pool *epoch* it was submitted under, so a batch of
    futures stranded by one dead executor triggers exactly one
    respawn — the stragglers just re-evaluate locally.
    """

    __slots__ = ("_pool", "_future", "_assignment", "_epoch")

    def __init__(self, pool, future, assignment, epoch) -> None:
        self._pool = pool
        self._future = future
        self._assignment = assignment
        self._epoch = epoch

    def result(self) -> float:
        try:
            return self._future.result()
        except Exception as exc:  # BrokenProcessPool, pickling faults, ...
            self._pool._handle_failure("result", exc, epoch=self._epoch)
            return self._pool._evaluate_local(self._assignment)


class TerminalEvaluationPool:
    """Dispatches ``evaluate_assignment`` calls to persistent workers.

    Args:
        env: the environment whose problem the workers replicate.  The
            pool captures (and thereby pins) the env's canonical start
            state at construction, so pooled and in-process evaluations
            agree bitwise.
        workers: process count; ``<= 1`` skips spawning entirely and every
            evaluation runs in-process (the sequential twin).
        events: degradation events (spawn failures, broken pools) land here.
        respawn_limit: crashed-pool restarts attempted before permanently
            degrading to in-process evaluation.
        clamp: bound workers by ``os.cpu_count()`` (and fall back
            in-process when that leaves one worker); False takes the
            requested count literally.
    """

    def __init__(
        self,
        env,
        workers: int = 1,
        events: EventLog | None = None,
        respawn_limit: int = 2,
        clamp: bool = True,
    ) -> None:
        import os

        self.env = env
        self.requested_workers = max(1, int(workers))
        self.workers = self.requested_workers
        self.events = events if events is not None else EventLog()
        self.respawn_limit = max(0, int(respawn_limit))
        self.respawns = 0
        self.n_pooled = 0
        self.n_local = 0
        self._executor = None
        self._broken = False
        self._epoch = 0
        if clamp:
            cores = os.cpu_count() or 1
            self.workers = min(self.requested_workers, cores)
            if self.workers < self.requested_workers:
                # Oversubscription loses (BENCH_pr3: w4 = 0.21× on one
                # core); shrink to the cores we have, or skip the pool
                # entirely when that leaves a serial execution anyway.
                self.events.emit(
                    "degradation",
                    solver="terminal_pool",
                    phase="sizing",
                    fallback="in_process" if self.workers <= 1 else "clamp",
                    requested=self.requested_workers,
                    cpu_count=cores,
                    workers=self.workers,
                )
        if self.workers > 1:
            self._start()

    @property
    def parallel(self) -> bool:
        """True while pooled (asynchronous) evaluation is available."""
        return self._executor is not None and not self._broken

    # -- lifecycle -------------------------------------------------------------
    def _start(self) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # Pin the canonical start state *before* pickling so every worker
        # legalizes from exactly the parent's rewind point.
        self.env.coarse.restore_canonical()
        from repro.legalize.pipeline import IncrementalMacroLegalizer

        payload = pickle.dumps(
            {
                "coarse": self.env.coarse,
                "legalizer": {
                    "lp_net_limit": self.env.legalizer.lp_net_limit,
                    "cleanup": self.env.legalizer.cleanup,
                    "qp_clique_threshold": self.env.legalizer.qp_clique_threshold,
                },
                "incremental": isinstance(
                    self.env.legalizer, IncrementalMacroLegalizer
                ),
                "cell_place_iters": self.env.cell_place_iters,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            if faults.should_fire("pool.spawn"):
                raise OSError("injected pool spawn failure")
            ctx = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(payload,),
            )
            self._epoch += 1
        except PlacementError:
            raise
        except Exception as exc:
            self._executor = None
            self.events.emit(
                "degradation",
                solver="terminal_pool",
                fallback="in_process",
                phase="spawn",
                error=str(exc),
            )

    def _handle_failure(self, phase: str, exc: Exception, epoch: int | None = None) -> None:
        """A pooled operation failed: respawn the workers (bounded), or —
        once the respawn budget is spent — degrade to in-process forever.

        *epoch* is the pool generation the failing future belonged to;
        failures from an executor that was already replaced are ignored
        (their evaluations simply re-ran locally).
        """
        if self._broken:
            return
        if epoch is not None and epoch != self._epoch:
            return
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        if self.respawns < self.respawn_limit:
            self.respawns += 1
            self.events.emit(
                "degradation",
                solver="terminal_pool",
                fallback="respawn",
                phase=phase,
                respawn=self.respawns,
                error=str(exc),
            )
            self._start()
            if self._executor is not None:
                return
        self._broken = True
        self.events.emit(
            "degradation",
            solver="terminal_pool",
            fallback="in_process",
            phase=phase,
            error=str(exc),
        )

    def close(self) -> None:
        """Shut the workers down; further evaluations run in-process."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "TerminalEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------------
    def _evaluate_local(self, assignment) -> float:
        self.n_local += 1
        return self.env.evaluate_assignment(list(assignment))

    def submit(self, assignment):
        """Dispatch one evaluation; returns an object with ``.result()``.

        Pooled when workers are alive (the call returns immediately and
        the legalization overlaps with whatever the caller does next);
        otherwise the evaluation happens synchronously in-process before
        this returns.
        """
        key = tuple(int(a) for a in assignment)
        if self.parallel:
            try:
                if faults.should_fire("pool.worker_kill"):
                    # hard-kill one live worker; in-flight and subsequent
                    # futures observe BrokenProcessPool and the pool respawns
                    self._executor.submit(_kill_worker)
                if faults.should_fire("pool.submit"):
                    raise RuntimeError("injected pool submit failure")
                future = self._executor.submit(_evaluate_assignment, key)
            except PlacementError:
                raise
            except Exception as exc:
                self._handle_failure("submit", exc, epoch=self._epoch)
            else:
                self.n_pooled += 1
                return _PooledResult(self, future, key, self._epoch)
        return _ImmediateResult(self._evaluate_local(key))

    def evaluate(self, assignment) -> float:
        """Synchronous single evaluation (pooled when possible)."""
        return self.submit(assignment).result()

    def evaluate_many(self, assignments) -> list[float]:
        """Evaluate *assignments* concurrently; results in input order."""
        pending = [self.submit(a) for a in assignments]
        return [p.result() for p in pending]

    def warm_up(self, assignment, timeout: float | None = None) -> None:
        """Force worker start-up (spawn + imports) with one throwaway task.

        Benchmarks call this so throughput numbers measure steady-state
        evaluation, not interpreter boot.  *timeout* bounds the wait; on
        expiry the pool is marked broken and evaluation degrades
        in-process.
        """
        if not self.parallel:
            return
        started = time.perf_counter()
        try:
            futures = [
                self._executor.submit(_evaluate_assignment, tuple(int(a) for a in assignment))
                for _ in range(self.workers)
            ]
            for f in futures:
                remaining = None
                if timeout is not None:
                    remaining = max(0.0, timeout - (time.perf_counter() - started))
                f.result(timeout=remaining)
        except Exception as exc:
            self._handle_failure("warm_up", exc, epoch=self._epoch)
