"""Persistent worker pool for terminal legalize-and-place evaluations.

Terminal evaluation is the dominant cost of both RL pre-training and MCTS
(BENCH_pr2: ``seconds_terminal`` ≈ 73% of search wall-clock).  Because the
purity fix made ``evaluate_assignment`` a deterministic function of the
assignment alone, the work can move off-process: a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor` receives the pickled
coarse netlist **once** at pool creation (the initializer rebuilds a full
environment per worker) and then only assignment tuples travel per task.

Guarantees:

- **Bitwise equivalence** — every worker legalizes from the same canonical
  start state as the parent (the pool captures it before pickling), so a
  pooled evaluation returns exactly the float the parent would compute.
- **Graceful degradation** — ``workers <= 1``, a failed spawn, or a pool
  that dies mid-run (``BrokenProcessPool``) all fall back to in-process
  evaluation, recording a ``degradation`` event in the run's JSONL log
  (the PR 1 machinery) instead of failing the run.  Fault sites
  ``pool.spawn`` and ``pool.submit`` let tests drill both paths
  deterministically.
"""

from __future__ import annotations

import pickle
import time

from repro.runtime import faults
from repro.runtime.errors import PlacementError
from repro.utils.events import EventLog

#: per-worker environment, built once by :func:`_init_worker`
_WORKER_ENV = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the problem and build a private env."""
    global _WORKER_ENV
    from repro.env.placement_env import MacroGroupPlacementEnv
    from repro.legalize.pipeline import MacroLegalizer

    spec = pickle.loads(payload)
    legalizer = MacroLegalizer(**spec["legalizer"])
    _WORKER_ENV = MacroGroupPlacementEnv(
        spec["coarse"],
        legalizer=legalizer,
        cell_place_iters=spec["cell_place_iters"],
    )


def _evaluate_assignment(assignment: tuple[int, ...]) -> float:
    """Task function: one terminal evaluation in the worker's private env."""
    return _WORKER_ENV.evaluate_assignment(list(assignment))


class _ImmediateResult:
    """Future-alike wrapping an already-computed in-process value."""

    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        self._value = value

    def result(self) -> float:
        return self._value


class _PooledResult:
    """Future-alike that falls back in-process if the pool died."""

    __slots__ = ("_pool", "_future", "_assignment")

    def __init__(self, pool, future, assignment) -> None:
        self._pool = pool
        self._future = future
        self._assignment = assignment

    def result(self) -> float:
        try:
            return self._future.result()
        except Exception as exc:  # BrokenProcessPool, pickling faults, ...
            self._pool._mark_broken("result", exc)
            return self._pool._evaluate_local(self._assignment)


class TerminalEvaluationPool:
    """Dispatches ``evaluate_assignment`` calls to persistent workers.

    Args:
        env: the environment whose problem the workers replicate.  The
            pool captures (and thereby pins) the env's canonical start
            state at construction, so pooled and in-process evaluations
            agree bitwise.
        workers: process count; ``<= 1`` skips spawning entirely and every
            evaluation runs in-process (the sequential twin).
        events: degradation events (spawn failures, broken pools) land here.
    """

    def __init__(
        self,
        env,
        workers: int = 1,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.workers = max(1, int(workers))
        self.events = events if events is not None else EventLog()
        self.n_pooled = 0
        self.n_local = 0
        self._executor = None
        self._broken = False
        if self.workers > 1:
            self._start()

    @property
    def parallel(self) -> bool:
        """True while pooled (asynchronous) evaluation is available."""
        return self._executor is not None and not self._broken

    # -- lifecycle -------------------------------------------------------------
    def _start(self) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # Pin the canonical start state *before* pickling so every worker
        # legalizes from exactly the parent's rewind point.
        self.env.coarse.restore_canonical()
        payload = pickle.dumps(
            {
                "coarse": self.env.coarse,
                "legalizer": {
                    "lp_net_limit": self.env.legalizer.lp_net_limit,
                    "cleanup": self.env.legalizer.cleanup,
                    "qp_clique_threshold": self.env.legalizer.qp_clique_threshold,
                },
                "cell_place_iters": self.env.cell_place_iters,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            if faults.should_fire("pool.spawn"):
                raise OSError("injected pool spawn failure")
            ctx = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(payload,),
            )
        except PlacementError:
            raise
        except Exception as exc:
            self._executor = None
            self.events.emit(
                "degradation",
                solver="terminal_pool",
                fallback="in_process",
                phase="spawn",
                error=str(exc),
            )

    def _mark_broken(self, phase: str, exc: Exception) -> None:
        if self._broken:
            return
        self._broken = True
        self.events.emit(
            "degradation",
            solver="terminal_pool",
            fallback="in_process",
            phase=phase,
            error=str(exc),
        )
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self) -> None:
        """Shut the workers down; further evaluations run in-process."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "TerminalEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------------
    def _evaluate_local(self, assignment) -> float:
        self.n_local += 1
        return self.env.evaluate_assignment(list(assignment))

    def submit(self, assignment):
        """Dispatch one evaluation; returns an object with ``.result()``.

        Pooled when workers are alive (the call returns immediately and
        the legalization overlaps with whatever the caller does next);
        otherwise the evaluation happens synchronously in-process before
        this returns.
        """
        key = tuple(int(a) for a in assignment)
        if self.parallel:
            try:
                if faults.should_fire("pool.submit"):
                    raise RuntimeError("injected pool submit failure")
                future = self._executor.submit(_evaluate_assignment, key)
            except PlacementError:
                raise
            except Exception as exc:
                self._mark_broken("submit", exc)
            else:
                self.n_pooled += 1
                return _PooledResult(self, future, key)
        return _ImmediateResult(self._evaluate_local(key))

    def evaluate(self, assignment) -> float:
        """Synchronous single evaluation (pooled when possible)."""
        return self.submit(assignment).result()

    def evaluate_many(self, assignments) -> list[float]:
        """Evaluate *assignments* concurrently; results in input order."""
        pending = [self.submit(a) for a in assignments]
        return [p.result() for p in pending]

    def warm_up(self, assignment, timeout: float | None = None) -> None:
        """Force worker start-up (spawn + imports) with one throwaway task.

        Benchmarks call this so throughput numbers measure steady-state
        evaluation, not interpreter boot.  *timeout* bounds the wait; on
        expiry the pool is marked broken and evaluation degrades
        in-process.
        """
        if not self.parallel:
            return
        started = time.perf_counter()
        try:
            futures = [
                self._executor.submit(_evaluate_assignment, tuple(int(a) for a in assignment))
                for _ in range(self.workers)
            ]
            for f in futures:
                remaining = None
                if timeout is not None:
                    remaining = max(0.0, timeout - (time.perf_counter() - started))
                f.result(timeout=remaining)
        except Exception as exc:
            self._mark_broken("warm_up", exc)
