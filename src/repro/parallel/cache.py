"""Cross-run terminal-evaluation cache.

Terminal evaluation (legalize + cell placement) became a pure function of
the assignment once :meth:`CoarseNetlist.restore_canonical` landed, so its
results are cacheable forever — not just within one search, but across
checkpoint/resume boundaries and across entirely separate runs on the same
problem.  :class:`TerminalCache` maps assignment tuples to measured HPWL
and can optionally mirror itself to a JSONL file in the run directory.

The cache key is the assignment tuple *plus* an environment fingerprint
(:func:`environment_fingerprint`): a hash of everything that changes the
measured wirelength — the design, the grid plan, the group structure, the
legalizer knobs, and the cell-placement effort.  Persisted entries whose
fingerprint does not match the live environment are ignored on load, so a
stale file can never poison a run.  Loads tolerate a torn tail line (a
kill mid-append), matching the event-log convention.

The persisted file is safe to share across **concurrent writer
processes** (a whole placement fleet appends to one file): every append
is a single ``write`` syscall on an ``O_APPEND`` descriptor
(:func:`repro.utils.events.append_jsonl`), so records from different
shards interleave whole, never byte-wise.  Each record carries a sha256
of its own content, verified on load — a flipped bit (disk rot, an
interleaved torn write) drops that one record instead of poisoning a
search with a wrong wirelength.  Replays are last-writer-wins per key,
which dedupes the benign case of two shards measuring (and appending)
the same assignment: both wrote the identical value, so either wins.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid

from repro.utils.events import append_jsonl, read_jsonl


def environment_fingerprint(env) -> str:
    """Hash of every knob that affects a terminal evaluation's result.

    Covers the design identity (name, node/net counts, total node area),
    the grid plan, the macro-group structure (count + per-group spans, the
    action-space geometry), the legalizer configuration, and
    ``cell_place_iters``.  Two environments with equal fingerprints return
    bitwise-identical HPWL for equal assignments (given the purity
    guarantee of :meth:`MacroLegalizer.legalize`).
    """
    coarse = env.coarse
    nl = coarse.design.netlist
    plan = coarse.plan
    legalizer = env.legalizer
    payload = {
        "design": {
            "name": nl.name,
            "n_nodes": len(nl),
            "n_nets": len(nl.nets),
            "area": repr(float(sum(node.area for node in nl))),
        },
        "region": [
            repr(float(v))
            for v in (
                coarse.design.region.x,
                coarse.design.region.y,
                coarse.design.region.width,
                coarse.design.region.height,
            )
        ],
        "zeta": plan.zeta,
        "groups": {
            "macro": coarse.n_macro_groups,
            "cell": len(coarse.cell_groups),
            "fixed": len(coarse.fixed_groups),
            "spans": [
                list(coarse.group_span(i)) for i in range(coarse.n_macro_groups)
            ],
        },
        "legalizer": {
            "lp_net_limit": legalizer.lp_net_limit,
            "cleanup": legalizer.cleanup,
            "qp_clique_threshold": legalizer.qp_clique_threshold,
        },
        "cell_place_iters": env.cell_place_iters,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class TerminalCache:
    """Assignment-tuple → HPWL map with optional JSONL persistence.

    Shared by the MCTS search (in place of its old private value cache)
    and, through the run harness, across resume boundaries: the flow binds
    the cache to ``<run_dir>/terminal_cache.jsonl`` so a resumed — or a
    completely separate — run on the same problem skips every terminal
    evaluation it has already paid for.
    """

    def __init__(self, fingerprint: str, path: str | None = None) -> None:
        self.fingerprint = fingerprint
        self.path = path
        self._entries: dict[tuple[int, ...], float] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0
        if path is not None:
            self._load(path)

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookups ---------------------------------------------------------------
    def get(self, assignment) -> float | None:
        key = tuple(int(a) for a in assignment)
        wirelength = self._entries.get(key)
        if wirelength is None:
            self.misses += 1
        else:
            self.hits += 1
        return wirelength

    def put(self, assignment, wirelength: float) -> None:
        key = tuple(int(a) for a in assignment)
        if key in self._entries:
            return
        self._entries[key] = float(wirelength)
        if self.path is not None:
            self._append(key, float(wirelength))

    def update(self, entries: dict) -> None:
        """Merge *entries* (e.g. from a search snapshot) into the cache."""
        for key, wirelength in entries.items():
            self.put(key, wirelength)

    def as_dict(self) -> dict[tuple[int, ...], float]:
        return dict(self._entries)

    # -- persistence -----------------------------------------------------------
    @staticmethod
    def _record_sha(fingerprint: str, key: tuple[int, ...], wirelength: float) -> str:
        """Content digest of one persisted entry.

        ``repr`` of the float keeps the digest exact down to the last
        bit — the whole point of the cache is bitwise-identical replay.
        """
        text = f"{fingerprint}|{','.join(str(a) for a in key)}|{wirelength!r}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def _append(self, key: tuple[int, ...], wirelength: float) -> None:
        record = {
            "fingerprint": self.fingerprint,
            "assignment": list(key),
            "wirelength": wirelength,
            "sha": self._record_sha(self.fingerprint, key, wirelength),
        }
        # Single-syscall append: fleet shards share this file.
        append_jsonl(self.path, record)

    def _load(self, path: str) -> None:
        for record in read_jsonl(path):  # tolerates a torn tail line
            if record.get("fingerprint") != self.fingerprint:
                continue
            try:
                key = tuple(int(a) for a in record["assignment"])
                wirelength = float(record["wirelength"])
            except (KeyError, TypeError, ValueError):
                continue
            sha = record.get("sha")
            if sha is not None and sha != self._record_sha(
                self.fingerprint, key, wirelength
            ):
                self.corrupt_entries += 1
                continue  # bit rot / damaged record: drop it, keep the rest
            # Last-writer-wins: concurrent shards may append the same key
            # (with identical values — evaluation is pure); later records
            # simply overwrite earlier ones.
            self._entries[key] = wirelength

    def compact(self) -> dict:
        """Atomically rewrite the JSONL keeping only winning, valid records.

        Reads tolerate duplicates and corruption forever, but the file
        itself only ever grows — this is the governor's shrink path.  The
        rewrite keeps, for **every** fingerprint present (not just this
        instance's), the last-writer-wins record per assignment whose
        content sha verifies; corrupt and superseded records are dropped
        and legacy records without a sha are rewritten with one.  The new
        file lands via tmp + ``os.replace``, so concurrent readers see
        either the old or the new version, never a half-rewrite.  In a
        fleet the caller must hold the GC lease: a peer's append racing
        the rename can be lost (it re-appends on its next miss — a cache
        entry is a pure accelerator), but two concurrent compactions
        could drop each other's survivors.

        Returns ``{"kept", "dropped_corrupt", "dropped_superseded",
        "before_bytes", "after_bytes"}``.
        """
        empty = {
            "kept": 0, "dropped_corrupt": 0, "dropped_superseded": 0,
            "before_bytes": 0, "after_bytes": 0,
        }
        if self.path is None or not os.path.exists(self.path):
            return empty
        before_bytes = os.path.getsize(self.path)
        raw = read_jsonl(self.path)
        winners: dict[tuple, dict] = {}
        dropped_corrupt = 0
        for record in raw:
            fingerprint = record.get("fingerprint")
            try:
                key = tuple(int(a) for a in record["assignment"])
                wirelength = float(record["wirelength"])
            except (KeyError, TypeError, ValueError):
                dropped_corrupt += 1
                continue
            if not isinstance(fingerprint, str):
                dropped_corrupt += 1
                continue
            sha = self._record_sha(fingerprint, key, wirelength)
            if record.get("sha") is not None and record["sha"] != sha:
                dropped_corrupt += 1
                continue
            winners[(fingerprint, key)] = {
                "fingerprint": fingerprint,
                "assignment": list(key),
                "wirelength": wirelength,
                "sha": sha,
            }
        lines = [
            json.dumps(winners[k], sort_keys=True)
            for k in sorted(winners)
        ]
        from repro.runtime.resources import guarded_write

        def _rewrite() -> None:
            tmp = f"{self.path}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp"
            with open(tmp, "w") as f:
                f.write("".join(line + "\n" for line in lines))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)

        guarded_write(f"compact:{os.path.basename(self.path)}", _rewrite)
        self.corrupt_entries = 0  # the rewritten file holds none
        return {
            "kept": len(winners),
            "dropped_corrupt": dropped_corrupt,
            "dropped_superseded": len(raw) - dropped_corrupt - len(winners),
            "before_bytes": before_bytes,
            "after_bytes": os.path.getsize(self.path),
        }
