"""Incremental group-centroid HPWL over the coarse netlist.

The surrogate places every macro group at the center of the span
rectangle its anchor implies (exactly :func:`repro.legalize.pipeline.span_rect`,
so tier 1 and tier 2 agree on geometry), models the *cell response* —
cell groups drifting toward the macros they connect to, the dominant
effect the exact pipeline's quadratic cell placement produces — with a
precomputed linear map, and sums weighted per-net HPWL over the coarse
nets.  No QP solve, no LP, no per-cell placement at score time.

**Cell response.**  The equilibrium of the clique-model quadratic
objective is linear in the boundary (macro + fixed group) positions:
``x_cells = M @ x_boundary + b``, where ``M`` solves the cell-block
Laplacian once at construction (ridge-regularized so disconnected cell
groups stay at their canonical centroids).  Scoring therefore costs one
small matvec plus a bounding box per cell-touching net — and fidelity
jumps from ~0.87 to ~0.93 Spearman against exact HPWL on the bench
design, clearing the ≥ 0.9 gate the pruning scheme requires.

Scoring is incremental where the model allows: a *prefix stack* of
applied (group, anchor) moves maintains the contributions of nets that
touch no cell group — scoring a new assignment pops back to the longest
common prefix and re-pushes only the differing suffix.  Cell-touching
nets depend on every macro position through ``M``, so their
contributions (and the matvec) are recomputed per score; on macro-rich
designs whose nets bypass cell clusters the stack still short-circuits
the static part.

Bitwise parity with :meth:`score_from_scratch` is guaranteed by
construction — both paths assign coordinates from the same tables, run
the same matvec on the same gathered vector, compute each net's
contribution with the same expression, and total the same-ordered
contribution array with one ``ndarray.sum()`` — and locked in by a
property test (random single-group moves, exact float equality).
"""

from __future__ import annotations

import numpy as np

from repro.coarsen.coarse import CoarseNetlist
from repro.coarsen.groups import GroupKind
from repro.legalize.pipeline import span_rect


class GroupCentroidSurrogate:
    """Tier-1 terminal scorer for complete macro-group assignments.

    Args:
        coarse: the coarsened problem.  Group structure, net projection,
            canonical centroids, and the cell-response influence matrix
            are compiled once at construction; the evaluator never
            touches the design afterwards (scoring a million assignments
            mutates nothing the exact pipeline sees).
        cell_response: model cell groups at their clique-equilibrium
            positions given the boundary (on by default — this is what
            carries the fidelity gate).  ``False`` freezes cell groups
            at canonical centroids: cheaper per score, pure prefix-stack
            incremental, noticeably worse ranking.
    """

    def __init__(
        self, coarse: CoarseNetlist, cell_response: bool = True
    ) -> None:
        self.coarse = coarse
        n_mg = coarse.n_macro_groups
        self.n_macro_groups = n_mg
        groups = coarse.all_groups
        n_groups = len(groups)

        # Canonical centroids (fixed groups never move in the surrogate
        # model; macro-group entries are overwritten per push and cell
        # groups per matvec when the cell response is on).
        canonical = getattr(coarse, "_canonical", None)
        if canonical is not None:
            centers = [(cx, cy) for (cx, cy, _bbox) in canonical[1]]
        else:
            centers = [(g.cx, g.cy) for g in groups]
        self._gx = np.array([c[0] for c in centers], dtype=float)
        self._gy = np.array([c[1] for c in centers], dtype=float)
        self._canonical_macro_xy = (
            self._gx[:n_mg].copy(), self._gy[:n_mg].copy()
        )

        # Anchor → span-rect center, tabulated per macro group through the
        # real span_rect so tier 1 and tier 2 agree bit-for-bit on where
        # an anchored group sits.
        n_grids = coarse.plan.n_grids
        self._anchor_cx = np.empty((n_mg, n_grids))
        self._anchor_cy = np.empty((n_mg, n_grids))
        for i in range(n_mg):
            for a in range(n_grids):
                rect = span_rect(coarse, i, a)
                self._anchor_cx[i, a] = rect.cx
                self._anchor_cy[i, a] = rect.cy

        # Net structure: group-index arrays + weights, in coarse-net order.
        self._net_groups = [
            np.asarray(net.groups, dtype=np.int64) for net in coarse.coarse_nets
        ]
        self._net_weight = np.array(
            [net.weight for net in coarse.coarse_nets], dtype=float
        )
        self.n_nets = len(self._net_groups)

        # Cell-response model: x_cells = M @ x_boundary + b at the ridge-
        # regularized clique equilibrium (solved once; scoring is a matvec).
        cell_ids = [
            g for g in range(n_groups) if groups[g].kind is GroupKind.CELL
        ]
        self.cell_response = bool(cell_response) and len(cell_ids) > 0
        cell_set = set(cell_ids) if self.cell_response else set()
        if self.cell_response:
            self._compile_cell_response(n_groups, cell_ids)

        #: nets free of cell groups are maintained incrementally by the
        #: prefix stack; cell-touching nets are recomputed per score.
        self._cell_nets = np.asarray(
            [
                j
                for j, gids in enumerate(self._net_groups)
                if any(int(g) in cell_set for g in gids)
            ],
            dtype=np.int64,
        )
        static = set(range(self.n_nets)) - set(int(j) for j in self._cell_nets)
        nets_of_group: list[list[int]] = [[] for _ in range(n_groups)]
        for j, gids in enumerate(self._net_groups):
            if j not in static:
                continue
            for gi in gids:
                nets_of_group[int(gi)].append(j)
        self._nets_of_group = [
            np.asarray(lst, dtype=np.int64) for lst in nets_of_group[:n_mg]
        ]

        #: prefix stack: (anchor, [(net, saved_contrib)...], old_x, old_y)
        self._stack: list[tuple[int, list[tuple[int, float]], float, float]] = []
        self._contribs = self._full_contribs(self._gx, self._gy)
        self.n_scores = 0
        self.n_net_updates = 0
        self.n_moves_applied = 0

    def _compile_cell_response(self, n_groups: int, cell_ids: list[int]) -> None:
        """Solve the cell-block clique Laplacian once.

        ``K x_c = B x_b + eps * x_canonical`` with a ridge ``eps`` on the
        diagonal so cell groups with no boundary path (or no connections
        at all) relax to their canonical centroids instead of making the
        system singular.  ``M = K⁻¹B`` and the two per-axis offsets are
        all scoring ever needs.
        """
        self._cell_idx = np.asarray(cell_ids, dtype=np.int64)
        bound_ids = [g for g in range(n_groups) if g not in set(cell_ids)]
        self._bound_idx = np.asarray(bound_ids, dtype=np.int64)
        pos_c = {g: k for k, g in enumerate(cell_ids)}
        pos_b = {g: k for k, g in enumerate(bound_ids)}
        n_c, n_b = len(cell_ids), len(bound_ids)
        K = np.zeros((n_c, n_c))
        B = np.zeros((n_c, n_b))
        for j, gids in enumerate(self._net_groups):
            w = float(self._net_weight[j])
            members = [int(g) for g in gids]
            for a in members:
                ia = pos_c.get(a)
                if ia is None:
                    continue
                for b in members:
                    if b == a:
                        continue
                    K[ia, ia] += w
                    ib = pos_c.get(b)
                    if ib is not None:
                        K[ia, ib] -= w
                    else:
                        B[ia, pos_b[b]] += w
        eps = 1e-6 * max(float(K.diagonal().max(initial=0.0)), 1.0)
        K[np.diag_indices_from(K)] += eps
        canon_x = self._gx[self._cell_idx].copy()
        canon_y = self._gy[self._cell_idx].copy()
        rhs = np.concatenate(
            [B, eps * canon_x[:, None], eps * canon_y[:, None]], axis=1
        )
        solved = np.linalg.solve(K, rhs)
        self._M = solved[:, :n_b]
        self._b0x = solved[:, n_b]
        self._b0y = solved[:, n_b + 1]

    # -- contribution kernels --------------------------------------------------
    def _contrib(self, j: int, gx: np.ndarray, gy: np.ndarray) -> float:
        """Weighted HPWL of coarse net *j* under coordinates (gx, gy)."""
        idx = self._net_groups[j]
        xs = gx[idx]
        ys = gy[idx]
        return float(
            self._net_weight[j]
            * ((xs.max() - xs.min()) + (ys.max() - ys.min()))
        )

    def _apply_cell_response(self, gx: np.ndarray, gy: np.ndarray) -> None:
        """Write the equilibrium cell positions for the current boundary."""
        gx[self._cell_idx] = self._M @ gx[self._bound_idx] + self._b0x
        gy[self._cell_idx] = self._M @ gy[self._bound_idx] + self._b0y

    def _full_contribs(self, gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
        out = np.empty(self.n_nets)
        for j in range(self.n_nets):
            out[j] = self._contrib(j, gx, gy)
        return out

    # -- prefix stack ----------------------------------------------------------
    def _push(self, anchor: int) -> None:
        i = len(self._stack)
        old_x = float(self._gx[i])
        old_y = float(self._gy[i])
        self._gx[i] = self._anchor_cx[i, anchor]
        self._gy[i] = self._anchor_cy[i, anchor]
        saved: list[tuple[int, float]] = []
        for j in self._nets_of_group[i]:
            j = int(j)
            saved.append((j, float(self._contribs[j])))
            self._contribs[j] = self._contrib(j, self._gx, self._gy)
        self.n_net_updates += len(saved)
        self._stack.append((int(anchor), saved, old_x, old_y))

    def _pop(self) -> None:
        anchor, saved, old_x, old_y = self._stack.pop()
        i = len(self._stack)
        self._gx[i] = old_x
        self._gy[i] = old_y
        for j, contrib in reversed(saved):
            self._contribs[j] = contrib

    @property
    def prefix_depth(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        """Drop the prefix stack (coordinates rewind as entries pop)."""
        while self._stack:
            self._pop()

    # -- scoring ---------------------------------------------------------------
    def score(self, assignment) -> float:
        """Surrogate HPWL of a *complete* assignment, incrementally.

        Reuses the longest common prefix with the previously scored
        assignment for the cell-free nets; the cell response (one matvec)
        and the cell-touching nets' contributions are recomputed per
        score — they depend on every macro position through ``M``.
        """
        anchors = [int(a) for a in assignment]
        if len(anchors) != self.n_macro_groups:
            raise ValueError(
                f"assignment covers {len(anchors)} groups, "
                f"expected {self.n_macro_groups}"
            )
        shared = 0
        while shared < len(self._stack) and self._stack[shared][0] == anchors[shared]:
            shared += 1
        while len(self._stack) > shared:
            self._pop()
        for anchor in anchors[shared:]:
            self._push(anchor)
        if self.cell_response:
            self._apply_cell_response(self._gx, self._gy)
            for j in self._cell_nets:
                j = int(j)
                self._contribs[j] = self._contrib(j, self._gx, self._gy)
            self.n_net_updates += len(self._cell_nets)
        self.n_moves_applied += self.n_macro_groups - shared
        self.n_scores += 1
        return float(self._contribs.sum())

    def score_from_scratch(self, assignment) -> float:
        """Reference scorer: fresh coordinates, every net recomputed.

        The property tests gate :meth:`score` bitwise against this; the
        incremental path must be an optimization, never an approximation.
        """
        anchors = [int(a) for a in assignment]
        if len(anchors) != self.n_macro_groups:
            raise ValueError(
                f"assignment covers {len(anchors)} groups, "
                f"expected {self.n_macro_groups}"
            )
        gx = self._gx.copy()
        gy = self._gy.copy()
        gx[: self.n_macro_groups] = self._canonical_macro_xy[0]
        gy[: self.n_macro_groups] = self._canonical_macro_xy[1]
        for i, anchor in enumerate(anchors):
            gx[i] = self._anchor_cx[i, anchor]
            gy[i] = self._anchor_cy[i, anchor]
        if self.cell_response:
            self._apply_cell_response(gx, gy)
        return float(self._full_contribs(gx, gy).sum())
