"""Two-tier terminal evaluation: fast surrogate HPWL + top-K exact.

The exact terminal evaluation (legalize + cell place) dominates MCTS
wall-clock (BENCH_pr2/BENCH_pr3).  This package provides the cheap tier:

- :class:`GroupCentroidSurrogate` — group-centroid HPWL over the coarse
  netlist, computed *incrementally* against a prefix stack so scoring a
  terminal assignment that shares a prefix with the previous one only
  touches the nets of the groups that moved;
- :class:`SurrogateCalibration` — an online least-squares fit mapping
  surrogate wirelength to predicted exact wirelength, so pruned terminal
  leaves can still backpropagate a value on the exact reward scale;
- :func:`spearman` — rank correlation used by the fidelity gates
  (surrogate-vs-exact ordering agreement, per Cheng/Kahng 2302.11014:
  proxy fidelity must be measured, not assumed).

The surrogate *prunes* (decides which terminal candidates deserve the
exact pipeline); it never *reports* — ``best_terminal_assignment`` and
the final flow HPWL always come from exact evaluations.
"""

from repro.surrogate.calibrate import SurrogateCalibration, spearman
from repro.surrogate.hpwl import GroupCentroidSurrogate

__all__ = [
    "GroupCentroidSurrogate",
    "SurrogateCalibration",
    "spearman",
]
