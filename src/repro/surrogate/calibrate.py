"""Surrogate→exact calibration and rank-fidelity measurement.

The surrogate's job is ordering, not absolute wirelength: span-center
HPWL over the coarse netlist undercounts everything the exact pipeline
adds (legalized overlap resolution, cell spreading).  Two small tools
keep that honest:

- :func:`spearman` measures how well the surrogate *ranks* assignments
  against exact HPWL — the fidelity gate (≥ 0.9 at bench scale) that
  PAPERS.md's Cheng/Kahng assessment insists on measuring rather than
  assuming;
- :class:`SurrogateCalibration` fits an online least-squares line from
  surrogate to exact wirelength over the (surrogate, exact) pairs the
  search has already paid for, so terminal leaves *pruned* by the top-K
  filter can still backpropagate a value on the exact reward scale
  instead of poisoning the tree with raw surrogate magnitudes.

Both are dependency-free numpy (no scipy.stats) and deterministic:
calibration state is an ordered list of pairs, and the running sums are
rebuilt by replaying that list, so a resumed search sees bit-identical
predictions.
"""

from __future__ import annotations

import math

import numpy as np


def spearman(a, b) -> float:
    """Spearman rank correlation with average ranks for ties.

    Returns ``nan`` when either side has fewer than two points or zero
    rank variance (a constant surrogate cannot be said to rank anything).
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        return float("nan")
    rx = _average_ranks(x)
    ry = _average_ranks(y)
    rx = rx - rx.mean()
    ry = ry - ry.mean()
    denom = math.sqrt(float(rx @ rx) * float(ry @ ry))
    if denom == 0.0:
        return float("nan")
    return float(rx @ ry) / denom


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks; tied values share the mean of their rank span."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


class SurrogateCalibration:
    """Online least-squares map from surrogate HPWL to exact HPWL.

    Every exact evaluation the search performs anyway feeds one
    ``observe(surrogate, exact)`` pair; ``predict`` then returns the
    fitted ``slope * s + intercept``.  Degenerate regimes fall back
    gracefully: with < 2 pairs or zero surrogate variance the mean
    exact-to-surrogate ratio is used, and with no pairs at all the
    surrogate value passes through unchanged.

    The pair list is the canonical state (ordered, JSON-serializable);
    running sums are derived by replay so that a search resumed from a
    snapshot predicts bit-identically to one that never stopped.
    """

    def __init__(self) -> None:
        self.pairs: list[tuple[float, float]] = []
        self._n = 0
        self._sx = 0.0
        self._sy = 0.0
        self._sxx = 0.0
        self._sxy = 0.0

    def observe(self, surrogate: float, exact: float) -> None:
        s = float(surrogate)
        e = float(exact)
        self.pairs.append((s, e))
        self._n += 1
        self._sx += s
        self._sy += e
        self._sxx += s * s
        self._sxy += s * e

    @property
    def n(self) -> int:
        return self._n

    def predict(self, surrogate: float) -> float:
        s = float(surrogate)
        if self._n == 0:
            return s
        if self._n >= 2:
            var = self._n * self._sxx - self._sx * self._sx
            if var > 0.0:
                slope = (self._n * self._sxy - self._sx * self._sy) / var
                intercept = (self._sy - slope * self._sx) / self._n
                return slope * s + intercept
        # Ratio fallback: scale by the mean exact/surrogate ratio.
        if self._sx != 0.0:
            return s * (self._sy / self._sx)
        return self._sy / self._n

    def fidelity(self) -> float:
        """Spearman rank correlation over all observed pairs."""
        if len(self.pairs) < 2:
            return float("nan")
        return spearman(
            [p[0] for p in self.pairs], [p[1] for p in self.pairs]
        )

    # -- snapshot round-trip ---------------------------------------------------
    def export_pairs(self) -> list[list[float]]:
        return [[s, e] for s, e in self.pairs]

    @classmethod
    def from_pairs(cls, pairs) -> "SurrogateCalibration":
        cal = cls()
        for s, e in pairs:
            cal.observe(float(s), float(e))
        return cal
