"""Structured exception hierarchy of the fault-tolerant runtime.

Every failure the flow can surface derives from :class:`PlacementError`,
which carries the flow *stage* it occurred in plus arbitrary keyword
``details`` (episode index, solver status, budget seconds, ...) so a
supervisor — the CLI, a batch driver, a test — can decide whether to
resume, degrade, or abort without parsing message strings.  Each subclass
maps to a distinct process exit code (``repro.cli`` returns them), in the
spirit of sysexits: anything ≥ 10 is a placement-runtime failure, 64 is
bad usage (EX_USAGE).
"""

from __future__ import annotations


class PlacementError(Exception):
    """Base class of all structured placement-flow failures."""

    #: process exit code the CLI maps this class to
    exit_code = 10

    def __init__(self, message: str, *, stage: str | None = None, **details):
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.details = details

    def __str__(self) -> str:
        prefix = f"[{self.stage}] " if self.stage else ""
        suffix = ""
        if self.details:
            pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
            suffix = f" ({pairs})"
        return f"{prefix}{self.message}{suffix}"


class UsageError(PlacementError):
    """Bad CLI input / run-dir mismatch — the EX_USAGE class of failures."""

    exit_code = 64


class CalibrationError(PlacementError):
    """Reward calibration produced unusable statistics (Eq. 9 undefined)."""

    exit_code = 11


class TrainingDivergedError(PlacementError):
    """RL training could not recover (repeated NaN/inf updates or episode
    failures beyond the configured tolerance)."""

    exit_code = 12


class SolverInfeasibleError(PlacementError):
    """An LP/QP solve failed or reported infeasibility.

    Raised by the *inner* solver helpers; the legalization pipeline
    normally catches it and degrades to the greedy sequence-pair packing,
    so callers only see it when degradation is impossible too.
    """

    exit_code = 13


class StageTimeoutError(PlacementError):
    """A stage exceeded its wall-clock budget and has no anytime result."""

    exit_code = 14


class FaultInjected(PlacementError):
    """Deliberate failure raised by the fault-injection harness.

    Used by tests and the resume smoke-drill to simulate a killed process
    at a deterministic point; it deliberately subclasses
    :class:`PlacementError` so stage guards re-raise it instead of
    swallowing it like an ordinary episode exception.
    """

    exit_code = 15


class StageStallError(PlacementError):
    """A job's progress heartbeat stalled past ``stall_seconds``.

    Raised *cooperatively*: the service watchdog cancels the job's
    heartbeat, and the next progress poll inside the flow (budget checks
    run every RL episode wave and every MCTS exploration) raises this
    instead of continuing.  Classified as transient — a stalled solver is
    usually a one-off scheduling or I/O hiccup — so the supervisor
    retries it with backoff before quarantining.
    """

    exit_code = 16


class ArtifactCorruptError(PlacementError):
    """A checkpoint/artifact failed its recorded sha256 verification.

    Most corruption is absorbed silently (a corrupt snapshot is discarded,
    a corrupt completed-stage artifact triggers a cold stage restart, a
    corrupt warm-cache entry becomes a cold run); this error surfaces only
    when nothing can be recomputed — e.g. ``repro doctor`` validating a
    run dir offline.
    """

    exit_code = 17


class VerificationError(PlacementError):
    """The independent placement verifier rejected a final placement.

    Carries the failed check names in ``details`` so a supervisor can
    distinguish an overlap from an HPWL mismatch without string parsing.
    """

    exit_code = 18


class ResourceExhaustedError(PlacementError):
    """A durable write hit ENOSPC twice — once before and once after an
    emergency garbage-collection pass
    (:func:`repro.runtime.resources.guarded_write`).

    Classified *transient* by the service supervisor: the failing
    attempt re-enters the ordinary retry/backoff machinery (by the next
    attempt the governor's GC, or an operator, may have freed space)
    and the daemon itself keeps serving.
    """

    exit_code = 19
