"""The fault-tolerant run context threaded through the flow.

:class:`RunContext` is what turns ``MCTSGuidedPlacer.place`` from a
monolithic all-or-nothing call into a resumable pipeline: it owns the
run dir (when one is given), the structured event log, the per-stage
wall-clock budgets, and the save/load logic for every stage artifact.
Without a run dir it degrades to a pure in-memory observer — the flow
code is identical either way.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from repro.runtime import faults
from repro.runtime.budget import StageBudget
from repro.runtime.checkpoint import RunDir
from repro.runtime.errors import PlacementError
from repro.runtime.integrity import (
    CHECKSUMS_KEY,
    STAGE_ARTIFACTS,
    corrupt_file,
    sha256_file,
    verify_file,
)
from repro.utils.events import EventLog

TRAINING_SNAPSHOT = "training_snapshot.pkl"
MCTS_SNAPSHOT = "mcts_snapshot.pkl"
TERMINAL_CACHE = "terminal_cache.jsonl"


def rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


class RunContext:
    """Per-run state: manifest, events, budgets, artifacts."""

    def __init__(
        self,
        run_dir: str | None,
        config,
        design,
        resume: bool = False,
        fault_plan=None,
    ) -> None:
        self.config = config
        self.fault_plan = fault_plan
        #: optional externally-owned :class:`repro.inference.InferenceBroker`
        #: handle; the flow routes network evaluations through it when set
        #: (the placement service shares one broker across all scheduler
        #: slots this way).  Plain single-shot runs leave it None and the
        #: flow builds its own when ``config.inference_broker`` asks.
        self.inference_broker = None
        self.dir = RunDir(run_dir) if run_dir else None
        self.events = EventLog(self.dir.events_path if self.dir else None)
        if self.dir is not None:
            self.manifest = self.dir.init_manifest(config, design, resume)
            if not resume:
                # a fresh run must not pick up a previous run's leftovers
                self.manifest["stages"] = {}
                self.dir.write_manifest(self.manifest)
                self.dir.remove(TRAINING_SNAPSHOT)
                self.dir.remove(MCTS_SNAPSHOT)
                self.dir.remove(TERMINAL_CACHE)
        else:
            self.manifest = {"stages": {}}
        self.resume = resume

    # -- fault plan -----------------------------------------------------------
    @contextmanager
    def activate_faults(self):
        from repro.runtime import faults

        if self.fault_plan is None:
            yield
        else:
            with faults.inject(self.fault_plan):
                yield

    # -- artifact integrity ---------------------------------------------------
    def _record_checksum(self, name: str) -> None:
        """Record the sha256 of artifact *name* in the manifest.

        The ``checkpoint.corrupt`` fault site fires *after* the digest is
        taken from the good bytes, then flips one byte on disk — exactly
        the failure mode (good write, later bit rot) the checksums exist
        to catch.
        """
        if self.dir is None:
            return
        path = self.dir.file(name)
        digest = sha256_file(path)
        if faults.should_fire("checkpoint.corrupt"):
            offset = corrupt_file(path)
            self.events.emit(
                "fault_injected", site="checkpoint.corrupt",
                artifact=name, offset=offset,
            )
        self.manifest.setdefault(CHECKSUMS_KEY, {})[name] = digest
        self.dir.write_manifest(self.manifest)

    def _drop_checksum(self, name: str) -> None:
        if self.dir is None:
            return
        if self.manifest.get(CHECKSUMS_KEY, {}).pop(name, None) is not None:
            self.dir.write_manifest(self.manifest)

    def _artifact_intact(self, name: str) -> bool:
        """True when *name* exists and matches its recorded checksum
        (artifacts from pre-checksum run dirs are accepted as-is)."""
        expected = self.manifest.get(CHECKSUMS_KEY, {}).get(name)
        return verify_file(self.dir.file(name), expected)

    def _snapshot_intact(self, name: str) -> bool:
        """Verify an intra-stage snapshot before unpickling it.

        A corrupt snapshot is discarded (with a degradation event) and
        reported absent, so the stage restarts from its last good state
        instead of loading damaged bytes.
        """
        path = self.dir.file(name)
        if not os.path.exists(path):
            return True  # absent is a normal state, not damage
        expected = self.manifest.get(CHECKSUMS_KEY, {}).get(name)
        if expected is None or sha256_file(path) == expected:
            return True
        self.events.emit(
            "degradation", solver="integrity",
            fallback="snapshot_discarded", artifact=name,
        )
        self.dir.remove(name)
        self._drop_checksum(name)
        return False

    # -- stage bookkeeping ----------------------------------------------------
    def completed(self, stage: str) -> bool:
        """True when *stage* completed AND its artifacts verify intact.

        A checksum mismatch (or a missing artifact) clears the stage's
        completion mark with a degradation event, so the flow recomputes
        the stage cold — a corrupted checkpoint costs time, never
        correctness.
        """
        if not self.manifest["stages"].get(stage, {}).get("completed"):
            return False
        if self.dir is None:
            return True
        for name in STAGE_ARTIFACTS.get(stage, ()):
            if self._artifact_intact(name):
                continue
            self.events.emit(
                "degradation", stage=stage, solver="integrity",
                fallback="stage_restart", artifact=name,
            )
            del self.manifest["stages"][stage]
            self.manifest.get(CHECKSUMS_KEY, {}).pop(name, None)
            self.dir.write_manifest(self.manifest)
            return False
        return True

    def mark(self, stage: str, **meta) -> None:
        entry = {"completed": True}
        entry.update(meta)
        self.manifest["stages"][stage] = entry
        if self.dir is not None:
            self.dir.write_manifest(self.manifest)
        self.events.emit("stage_completed", stage=stage, **meta)

    def skip(self, stage: str) -> None:
        self.events.emit("stage_skipped", stage=stage, reason="resumed")

    @contextmanager
    def guard(self, stage: str):
        """Tag/record failures of one stage; re-raises everything."""
        self.events.emit("stage_start", stage=stage)
        try:
            yield
        except PlacementError as exc:
            if exc.stage is None:
                exc.stage = stage
            self.events.emit("stage_failed", stage=stage, error=str(exc),
                             kind=type(exc).__name__)
            raise
        except Exception as exc:
            self.events.emit("stage_failed", stage=stage, error=str(exc),
                             kind=type(exc).__name__)
            raise

    def budget(self, stage: str) -> StageBudget:
        cfg = self.config
        if stage == "rl_training":
            seconds = getattr(cfg, "rl_budget_seconds", None)
        elif stage == "mcts":
            seconds = getattr(cfg, "mcts_budget_seconds", None)
        else:
            seconds = None
        if seconds is None:
            seconds = getattr(cfg, "stage_budget_seconds", None)
        return StageBudget(stage, seconds)

    # -- terminal cache --------------------------------------------------------
    def terminal_cache_path(self) -> str | None:
        """File the cross-run terminal cache persists to (None in-memory)."""
        return self.dir.file(TERMINAL_CACHE) if self.dir is not None else None

    # -- positions ------------------------------------------------------------
    def save_positions(self, name: str, design) -> None:
        if self.dir is not None:
            self.dir.save_positions(name, design)
            self._record_checksum(name + ".npz")

    def load_positions(self, name: str, design) -> None:
        self.dir.load_positions(name, design)

    # -- calibration ----------------------------------------------------------
    def save_calibration(self, reward_fn, rng) -> None:
        if self.dir is None:
            return
        self.dir.save_json(
            "calibration.json",
            {
                "w_max": reward_fn.w_max,
                "w_min": reward_fn.w_min,
                "w_avg": reward_fn.w_avg,
                "alpha": reward_fn.alpha,
                "rng_state": rng_state(rng),
            },
        )
        self._record_checksum("calibration.json")

    def load_calibration(self, rng):
        from repro.agent.reward import NormalizedReward

        payload = self.dir.load_json("calibration.json")
        if payload is None:
            raise PlacementError(
                "calibration marked complete but calibration.json is missing",
                stage="calibration", run_dir=self.dir.path,
            )
        restore_rng(rng, payload["rng_state"])
        return NormalizedReward(
            w_max=payload["w_max"],
            w_min=payload["w_min"],
            w_avg=payload["w_avg"],
            alpha=payload["alpha"],
        )

    # -- RL training ----------------------------------------------------------
    def save_training(self, network, history, rng) -> None:
        if self.dir is None:
            return
        from repro.nn.serialization import save_params

        save_params(network, self.dir.file("network.npz"))
        self.dir.save_json(
            "training.json",
            {
                "rewards": history.rewards,
                "wirelengths": history.wirelengths,
                "losses": history.losses,
                "grad_norms": history.grad_norms,
                "rng_state": rng_state(rng),
            },
        )
        self._record_checksum("network.npz")
        self._record_checksum("training.json")
        self.dir.remove(TRAINING_SNAPSHOT)
        self._drop_checksum(TRAINING_SNAPSHOT)

    def load_training(self, network, rng):
        from repro.agent.actorcritic import TrainingHistory
        from repro.nn.serialization import load_params

        payload = self.dir.load_json("training.json")
        if payload is None:
            raise PlacementError(
                "rl_training marked complete but training.json is missing",
                stage="rl_training", run_dir=self.dir.path,
            )
        load_params(network, self.dir.file("network.npz"))
        restore_rng(rng, payload["rng_state"])
        return TrainingHistory(
            rewards=list(payload["rewards"]),
            wirelengths=list(payload["wirelengths"]),
            losses=list(payload["losses"]),
            grad_norms=list(payload["grad_norms"]),
        )

    def save_training_snapshot(self, trainer, history) -> None:
        if self.dir is None:
            return
        self.dir.save_pickle(TRAINING_SNAPSHOT, trainer.export_state(history))
        self._record_checksum(TRAINING_SNAPSHOT)
        self.events.emit(
            "checkpoint", stage="rl_training", episode=len(history.rewards)
        )

    def load_training_snapshot(self, trainer):
        """Restore an intra-stage RL snapshot into *trainer*; returns the
        restored :class:`TrainingHistory` (or None when no snapshot)."""
        if self.dir is None:
            return None
        if not self._snapshot_intact(TRAINING_SNAPSHOT):
            return None
        state = self.dir.load_pickle(TRAINING_SNAPSHOT)
        if state is None:
            return None
        history = trainer.restore_state(state)
        self.events.emit(
            "resume", stage="rl_training", episode=len(history.rewards)
        )
        return history

    # -- MCTS ------------------------------------------------------------------
    def save_mcts_snapshot(self, state: dict) -> None:
        if self.dir is None:
            return
        self.dir.save_pickle(MCTS_SNAPSHOT, state)
        self._record_checksum(MCTS_SNAPSHOT)
        self.events.emit("checkpoint", stage="mcts", step=state["step"])

    def load_mcts_snapshot(self) -> dict | None:
        if self.dir is None:
            return None
        if not self._snapshot_intact(MCTS_SNAPSHOT):
            return None
        state = self.dir.load_pickle(MCTS_SNAPSHOT)
        if state is not None:
            self.events.emit("resume", stage="mcts", step=state["step"])
        return state

    def save_search(self, result) -> None:
        if self.dir is None:
            return
        best_w = result.best_terminal_wirelength
        self.dir.save_json(
            "search.json",
            {
                "assignment": result.assignment,
                "wirelength": result.wirelength,
                "reward": result.reward,
                "path": [list(p) for p in result.path],
                "n_terminal_evaluations": result.n_terminal_evaluations,
                "n_network_evaluations": result.n_network_evaluations,
                "best_terminal_assignment": result.best_terminal_assignment,
                "best_terminal_wirelength": (
                    None if best_w == float("inf") else best_w
                ),
                # seconds_surrogate is deliberately NOT persisted: search.json
                # must be bit-for-bit identical across kill/resume, and wall
                # clock is not part of the search result.
                "n_exact_evaluations": result.n_exact_evaluations,
                "n_surrogate_evaluations": result.n_surrogate_evaluations,
                "surrogate_spearman": result.surrogate_spearman,
            },
        )
        self._record_checksum("search.json")
        self.dir.remove(MCTS_SNAPSHOT)
        self._drop_checksum(MCTS_SNAPSHOT)

    def load_search(self):
        from repro.mcts.search import SearchResult

        payload = self.dir.load_json("search.json")
        if payload is None:
            raise PlacementError(
                "mcts marked complete but search.json is missing",
                stage="mcts", run_dir=self.dir.path,
            )
        best_w = payload["best_terminal_wirelength"]
        return SearchResult(
            assignment=list(payload["assignment"]),
            wirelength=payload["wirelength"],
            reward=payload["reward"],
            path=[tuple(p) for p in payload["path"]],
            n_terminal_evaluations=payload["n_terminal_evaluations"],
            n_network_evaluations=payload["n_network_evaluations"],
            best_terminal_assignment=payload["best_terminal_assignment"],
            best_terminal_wirelength=(
                float("inf") if best_w is None else best_w
            ),
            # .get defaults keep search.json files from before the two-tier
            # engine loadable (every terminal evaluation was exact then)
            n_exact_evaluations=payload.get(
                "n_exact_evaluations", payload["n_terminal_evaluations"]
            ),
            n_surrogate_evaluations=payload.get("n_surrogate_evaluations", 0),
            seconds_surrogate=payload.get("seconds_surrogate", 0.0),
            surrogate_spearman=payload.get("surrogate_spearman"),
        )

    # -- final -----------------------------------------------------------------
    def save_final(self, design, hpwl: float, legal_hpwl: float | None) -> None:
        if self.dir is None:
            return
        self.save_positions("final_positions", design)
        self.dir.save_json(
            "final.json", {"hpwl": hpwl, "legal_hpwl": legal_hpwl}
        )
        self._record_checksum("final.json")

    def load_final(self, design) -> tuple[float, float | None]:
        payload = self.dir.load_json("final.json")
        if payload is None:
            raise PlacementError(
                "final marked complete but final.json is missing",
                stage="final", run_dir=self.dir.path,
            )
        self.dir.load_positions("final_positions", design)
        return payload["hpwl"], payload.get("legal_hpwl")
