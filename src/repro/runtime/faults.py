"""Deterministic fault-injection harness.

Recovery code that never runs is broken code you have not noticed yet.
This module lets tests (and the CI resume drill) trigger every failure
path of the runtime at an exactly chosen point:

    plan = FaultPlan(
        Fault("trainer.nan_loss", at=2),          # 2nd update goes NaN
        Fault("lp.solve", at=1, count=None),      # every LP solve fails
        Fault("mcts.kill", at=3),                 # die at the 3rd commit
    )
    with inject(plan):
        MCTSGuidedPlacer(cfg).place(design, run_dir=d)

Instrumented sites poll :func:`should_fire` with their site name; each
poll counts as one *arrival* and a fault fires on arrivals
``at .. at+count-1`` (``count=None`` keeps firing forever).  Because
arrivals are counted, not timed, injection is fully deterministic and
independent of machine speed.

Known sites
-----------
- ``trainer.episode``   — raise inside an episode rollout (guarded: skipped)
- ``trainer.nan_loss``  — corrupt an update's loss/params with NaN
- ``trainer.kill``      — :class:`FaultInjected` out of the training loop
- ``mcts.kill``         — :class:`FaultInjected` at an MCTS commit point
- ``lp.solve``          — LP spread reports infeasible (degrades to packing)
- ``qp.solve``          — QP placement solve raises (degrades to no-op)
- ``budget.<stage>``    — the stage's wall-clock budget reads as exhausted
- ``pool.spawn``        — terminal-pool spawn fails (degrades in-process)
- ``pool.submit``       — a pooled terminal submit raises (pool respawns
  workers up to its bounded limit, then degrades in-process)
- ``pool.worker_kill``  — hard-kill one pool worker process mid-wave
  (``os._exit`` inside the worker; exercises the bounded respawn path)
- ``inference.worker_kill`` — hard-kill the shared inference-broker
  process at an eval arrival (``os._exit`` in the broker; bounded
  respawn, then clients degrade to the bitwise-identical in-process
  tiled evaluation)
- ``checkpoint.corrupt``— flip one byte of a just-written run-dir
  artifact *after* its sha256 was recorded (bit-rot simulation; caught
  by integrity verification on the next resume/load)
- ``warm.corrupt``      — flip one byte of a just-stored warm-cache
  entry (caught by entry validation before injection → cold run)
- ``stall.freeze``      — freeze a job's progress heartbeat (beats stop
  registering; the service watchdog then raises ``StageStallError``)
- ``disk.enospc``       — a guarded durable write fails with ``OSError
  ENOSPC`` (polled by :func:`repro.runtime.resources.guarded_write`
  before each attempt: ``at=1`` fails once and lets the post-GC retry
  succeed; ``count=None`` simulates a disk that never frees)
- ``disk.pressure``     — the governor's next disk sample reads as
  quota-full (admission shedding engages without filling a real disk)
- ``mem.pressure``      — the governor's next RSS sample reads as over
  the memory quota (same shedding path, memory-driven)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.runtime.errors import FaultInjected


@dataclass
class Fault:
    """One deterministic trigger: fire on arrivals ``at .. at+count-1``."""

    site: str
    at: int = 1
    #: number of consecutive firings; ``None`` = fire forever from ``at``
    count: int | None = 1
    arrivals: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def arrive(self) -> bool:
        self.arrivals += 1
        if self.arrivals < self.at:
            return False
        if self.count is not None and self.arrivals >= self.at + self.count:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A set of faults plus arrival bookkeeping."""

    def __init__(self, *faults: Fault) -> None:
        self.faults = list(faults)

    def should_fire(self, site: str) -> bool:
        fired = False
        for fault in self.faults:
            if fault.site == site and fault.arrive():
                fired = True
        return fired

    def total_fired(self, site: str | None = None) -> int:
        return sum(
            f.fired for f in self.faults if site is None or f.site == site
        )


#: currently installed plan (module-global: the flow is single-threaded)
_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    return _ACTIVE


def should_fire(site: str) -> bool:
    """Poll *site*; True when an installed fault fires on this arrival."""
    return _ACTIVE is not None and _ACTIVE.should_fire(site)


def check_kill(site: str, stage: str | None = None) -> None:
    """Raise :class:`FaultInjected` when a kill fault fires at *site*."""
    if should_fire(site):
        raise FaultInjected(f"injected fault at {site}", stage=stage, site=site)


@contextmanager
def inject(plan: FaultPlan):
    """Install *plan* for the duration of the block (re-entrant safe)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
