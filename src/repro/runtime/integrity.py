"""Artifact integrity: sha256 checksums for every run-dir artifact.

Checkpoint/resume (PR 1) and warm-artifact reuse (PR 4) both assume that
a file on disk still holds what was written into it.  A flipped byte in
``network.npz`` does not make ``np.load`` fail — it silently changes the
result of every run resumed from it.  This module closes that gap:

- :func:`sha256_file` is the one hashing routine used everywhere a
  checksum is recorded or verified (run-dir manifest, warm cache,
  ``repro doctor``).
- :data:`STAGE_ARTIFACTS` names, per flow stage, the artifacts whose
  integrity a resume depends on.  ``RunContext.completed`` verifies them
  before trusting a "completed" manifest entry: a mismatch clears the
  stage mark and the flow recomputes the stage cold instead of loading
  garbage.
- :func:`corrupt_file` flips one byte deterministically — the shared
  implementation behind the ``checkpoint.corrupt`` / ``warm.corrupt``
  fault sites and the chaos drill.

Checksums are *advisory on legacy run dirs*: an artifact with no
recorded checksum (written before this layer existed) is accepted as-is,
so old run dirs stay resumable.
"""

from __future__ import annotations

import hashlib
import os

#: manifest key the checksum table lives under
CHECKSUMS_KEY = "checksums"

#: per-stage artifacts whose integrity a resume of that stage depends on
#: (intra-stage snapshots are verified separately at load time)
STAGE_ARTIFACTS: dict[str, tuple[str, ...]] = {
    "prototype": ("prototype.npz",),
    "calibration": ("calibration.json",),
    "rl_training": ("network.npz", "training.json"),
    "mcts": ("search.json",),
    "final": ("final.json", "final_positions.npz"),
}


def sha256_file(path: str, chunk: int = 1 << 20) -> str:
    """Hex sha256 digest of a file's bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def verify_file(path: str, expected: str | None) -> bool:
    """True when *path* exists and matches *expected* (None = no record,
    accepted for legacy artifacts written before checksums existed)."""
    if not os.path.exists(path):
        return False
    if expected is None:
        return True
    return sha256_file(path) == expected


def corrupt_file(path: str, offset: int | None = None) -> int:
    """Flip one byte of *path* in place; returns the flipped offset.

    Deterministic: without an explicit *offset* the byte at the middle of
    the file is flipped, so repeated drills damage the same location.
    """
    size = os.path.getsize(path)
    if size == 0:
        with open(path, "wb") as f:
            f.write(b"\xff")
        return 0
    pos = size // 2 if offset is None else min(offset, size - 1)
    with open(path, "r+b") as f:
        f.seek(pos)
        byte = f.read(1)
        f.seek(pos)
        f.write(bytes([byte[0] ^ 0xFF]))
        f.flush()
        os.fsync(f.fileno())
    return pos
