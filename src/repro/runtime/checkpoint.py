"""Run-directory layout: stage artifacts + the JSON run manifest.

A run dir makes a flow run durable.  Layout::

    <run_dir>/
      manifest.json           # stages completed, config/design fingerprints
      events.jsonl            # structured event log (utils.events)
      prototype.npz           # node positions after the prototype GP
      calibration.json        # Eq. 9 constants + post-calibration RNG state
      network.npz             # trained PolicyValueNet weights + BN stats
      training.json           # TrainingHistory telemetry + RNG state
      training_snapshot.pkl   # intra-stage RL snapshot (deleted on completion)
      mcts_snapshot.pkl       # intra-stage MCTS snapshot (deleted on completion)
      search.json             # committed MCTS SearchResult
      final.json              # final HPWL (+ optional legalized-cell HPWL)
      final_positions.npz     # node coordinates of the final placement

All JSON writes go through a tmp-file + ``os.replace`` so a kill mid-write
never corrupts the manifest; torn pickle snapshots are detected at load
time and treated as absent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time

import numpy as np

from repro.runtime.errors import UsageError
from repro.runtime.resources import guarded_write

MANIFEST = "manifest.json"
EVENTS = "events.jsonl"

#: canonical stage order of Algorithm 1
STAGES = ("prototype", "preprocess", "calibration", "rl_training", "mcts", "final")


def _atomic_write_text(path: str, text: str) -> None:
    # ENOSPC-guarded: a full disk degrades (emergency GC + one retry)
    # instead of killing the writer; the tmp file never aliases the
    # target, so a failed attempt leaves the previous version intact.
    def _write() -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    guarded_write(f"checkpoint:{os.path.basename(path)}", _write)


def _atomic_write_pickle(path: str, obj: object) -> None:
    def _write() -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            pickle.dump(obj, f, protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    guarded_write(f"checkpoint:{os.path.basename(path)}", _write)


def config_fingerprint(config) -> str:
    """Stable hash of every result-affecting knob of a PlacerConfig.

    ``run_dir``/``resume`` are where/how the run persists, not what it
    computes, so they are excluded — a run may be resumed with a different
    run-dir path spelling or from a config that only flips ``resume``.
    ``terminal_workers`` and ``terminal_cache_path`` are likewise
    excluded: pooled and in-process terminal evaluations are
    bitwise-identical and the cache is a pure accelerator, so a run may
    be resumed with a different worker count or cache location.
    ``verify_results`` only re-checks a finished placement (it can fail
    a run, never change its coordinates), so verified and unverified
    runs share warm artifacts and resume each other freely.
    ``incremental_legalizer`` swaps in a cache-reusing pipeline whose
    results are bitwise-identical to the from-scratch one, so it is an
    execution knob too.  The ``inference_broker``/``inference_max_batch``/
    ``inference_coalesce_us`` knobs are excluded as well: where and how
    network forwards are batched is execution policy (the fixed forward
    tile keeps broker-mode results invariant to both knobs and to
    concurrency).  Note the documented caveat: broker mode's tiled
    forward differs numerically from the untiled broker-off path, so
    flipping ``inference_broker`` *across a resume* changes leaf
    evaluations — resume with the toggle you started with.
    ``exact_topk`` stays IN the fingerprint: a
    finite K changes which terminal leaves receive exact values, so two
    runs differing in K are different computations.
    """
    payload = dataclasses.asdict(config)
    for knob in _EXECUTION_KNOBS:
        payload.pop(knob, None)
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: knobs excluded from every fingerprint: where/how a run persists or
#: executes, never what it computes (see :func:`config_fingerprint`).
_EXECUTION_KNOBS = (
    "run_dir",
    "resume",
    "terminal_workers",
    "terminal_pool_clamp",
    "terminal_cache_path",
    "verify_results",
    "incremental_legalizer",
    "inference_broker",
    "inference_max_batch",
    "inference_coalesce_us",
)

#: result-affecting knobs that only the *post-training* stages consume.
#: Calibration and RL pre-training never read the MCTS section (or the
#: ``exact_topk`` mirror into it), the MCTS stage budget, or the optional
#: final cell legalization — see ``core/flow.py``: stages 3–4 touch none
#: of them.  Two configs equal everywhere else therefore compute
#: byte-identical ``calibration.json`` / ``network.npz`` /
#: ``training.json`` artifacts.
_POST_TRAINING_KNOBS = (
    "mcts",
    "exact_topk",
    "mcts_budget_seconds",
    "legalize_cells",
)


def pretraining_fingerprint(config) -> str:
    """Stable hash of every knob that influences *pre-training* artifacts.

    Coarser than :func:`config_fingerprint`: search-only knobs
    (:data:`_POST_TRAINING_KNOBS`) are excluded on top of the execution
    knobs, so two configs that differ only in MCTS settings — a PUCT-c or
    γ sweep point, a different ``exact_topk`` — share one fingerprint.
    The warm-artifact cache keys on this, which is what lets a
    design-space-exploration study pay for pre-training once per unique
    (pre-training config × design) and serve every other sweep point
    warm, bit-for-bit.
    """
    payload = dataclasses.asdict(config)
    for knob in _EXECUTION_KNOBS + _POST_TRAINING_KNOBS:
        payload.pop(knob, None)
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def design_fingerprint(design) -> dict:
    """Coarse identity of a design: enough to catch resuming the wrong one."""
    nl = design.netlist
    return {
        "name": nl.name,
        "n_nodes": len(nl),
        "n_nets": len(nl.nets),
    }


class RunDir:
    """Artifact store + manifest for one flow run."""

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            os.makedirs(path, exist_ok=True)
        except OSError as exc:
            raise UsageError(
                f"cannot create run dir: {exc}", run_dir=path
            ) from exc
        self.manifest_path = os.path.join(path, MANIFEST)
        self.events_path = os.path.join(path, EVENTS)

    # -- manifest -------------------------------------------------------------
    def read_manifest(self) -> dict | None:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path) as f:
            try:
                return json.load(f)
            except json.JSONDecodeError as exc:
                # Manifest writes are atomic, so this is external damage
                # (disk fault, hand edit) — refuse clearly, don't trace back.
                raise UsageError(
                    f"run manifest is corrupt: {exc}",
                    run_dir=self.path,
                ) from exc

    def write_manifest(self, manifest: dict) -> None:
        _atomic_write_text(self.manifest_path, json.dumps(manifest, indent=2))

    def init_manifest(self, config, design, resume: bool) -> dict:
        """Create or validate the manifest against *config*/*design*."""
        fingerprint = config_fingerprint(config)
        design_fp = design_fingerprint(design)
        manifest = self.read_manifest() if resume else None
        if manifest is not None:
            if manifest.get("config_fingerprint") != fingerprint:
                raise UsageError(
                    "run dir was created with a different configuration",
                    run_dir=self.path,
                    expected=manifest.get("config_fingerprint"),
                    got=fingerprint,
                )
            if manifest.get("design") != design_fp:
                raise UsageError(
                    "run dir was created for a different design",
                    run_dir=self.path,
                    expected=manifest.get("design"),
                    got=design_fp,
                )
            return manifest
        manifest = {
            "version": 1,
            "created": time.time(),
            "config_fingerprint": fingerprint,
            "design": design_fp,
            "stages": {},
        }
        self.write_manifest(manifest)
        return manifest

    # -- file helpers ---------------------------------------------------------
    def file(self, name: str) -> str:
        return os.path.join(self.path, name)

    def _load_pickle(self, name: str):
        path = self.file(name)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as f:
                return pickle.load(f)
        except Exception:
            return None  # torn write from a kill; treat as absent

    def save_pickle(self, name: str, obj: object) -> None:
        _atomic_write_pickle(self.file(name), obj)

    def load_pickle(self, name: str):
        return self._load_pickle(name)

    def remove(self, name: str) -> None:
        try:
            os.remove(self.file(name))
        except FileNotFoundError:
            pass

    def save_json(self, name: str, payload: dict) -> None:
        _atomic_write_text(self.file(name), json.dumps(payload, indent=2))

    def load_json(self, name: str) -> dict | None:
        path = self.file(name)
        if not os.path.exists(path):
            return None
        with open(path) as f:
            return json.load(f)

    # -- node positions -------------------------------------------------------
    def save_positions(self, name: str, design) -> None:
        nl = design.netlist
        names = np.array([node.name for node in nl])
        xs = np.array([node.x for node in nl], dtype=float)
        ys = np.array([node.y for node in nl], dtype=float)

        def _write() -> None:
            tmp = self.file(name + ".tmp.npz")
            np.savez(tmp, names=names, x=xs, y=ys)
            os.replace(tmp, self.file(name + ".npz"))

        guarded_write(f"checkpoint:{name}.npz", _write)

    def load_positions(self, name: str, design) -> None:
        """Restore saved coordinates onto *design* (validated by node name)."""
        with np.load(self.file(name + ".npz"), allow_pickle=False) as data:
            names = [str(n) for n in data["names"]]
            xs, ys = data["x"], data["y"]
        nl = design.netlist
        if len(names) != len(nl):
            raise UsageError(
                f"positions checkpoint {name!r} covers {len(names)} nodes, "
                f"design has {len(nl)}",
                run_dir=self.path,
            )
        for node_name, x, y in zip(names, xs, ys):
            node = nl[node_name]
            node.x = float(x)
            node.y = float(y)
