"""Per-stage wall-clock budgets.

A :class:`StageBudget` is polled at safe points (episode boundaries,
MCTS explorations) by the anytime stages, which stop early and return
their best-so-far result when it reads exhausted; non-anytime stages
raise :class:`~repro.runtime.errors.StageTimeoutError` instead.  The
fault site ``budget.<stage>`` forces exhaustion deterministically so the
early-exit paths are testable without real waiting.
"""

from __future__ import annotations

import time

from repro.runtime import faults
from repro.runtime.errors import StageTimeoutError


class StageBudget:
    """Wall-clock allowance for one flow stage; starts on construction."""

    def __init__(self, stage: str, seconds: float | None) -> None:
        self.stage = stage
        self.seconds = seconds
        self._start = time.perf_counter()
        self._forced = False

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return self.seconds - self.elapsed()

    def exhausted(self) -> bool:
        """True once the budget is spent (sticky when fault-forced)."""
        if self._forced or faults.should_fire(f"budget.{self.stage}"):
            self._forced = True
            return True
        return self.seconds is not None and self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`StageTimeoutError` when exhausted (hard stages)."""
        if self.exhausted():
            raise StageTimeoutError(
                f"stage exceeded its {self.seconds}s budget",
                stage=self.stage,
                elapsed=round(self.elapsed(), 3),
            )
