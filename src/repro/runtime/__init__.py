"""Fault-tolerant flow runtime.

Wraps the Algorithm 1 flow with stage checkpoint/resume (run dirs +
manifests), a structured exception hierarchy, wall-clock budgets with
anytime results, solver/trainer guards with graceful degradation, and a
deterministic fault-injection harness for exercising every recovery
path.  See ``docs/architecture.md`` ("Runtime, checkpoints & failure
handling") for the run-dir layout and the degradation ladder.
"""

from repro.runtime.budget import StageBudget
from repro.runtime.checkpoint import (
    STAGES,
    RunDir,
    config_fingerprint,
    pretraining_fingerprint,
)
from repro.runtime.errors import (
    ArtifactCorruptError,
    CalibrationError,
    FaultInjected,
    PlacementError,
    SolverInfeasibleError,
    StageStallError,
    StageTimeoutError,
    TrainingDivergedError,
    UsageError,
    VerificationError,
)
from repro.runtime.faults import Fault, FaultPlan, inject
from repro.runtime.harness import RunContext
from repro.runtime.integrity import corrupt_file, sha256_file

__all__ = [
    "STAGES",
    "ArtifactCorruptError",
    "CalibrationError",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "PlacementError",
    "RunContext",
    "RunDir",
    "SolverInfeasibleError",
    "StageBudget",
    "StageStallError",
    "StageTimeoutError",
    "TrainingDivergedError",
    "UsageError",
    "VerificationError",
    "config_fingerprint",
    "corrupt_file",
    "inject",
    "pretraining_fingerprint",
    "sha256_file",
]
