"""Resource probes and the ENOSPC-safe durable-write guard.

Two concerns live here, deliberately below the service layer so every
durable writer in the tree can use them without import cycles:

**Probes** — cheap, dependency-free measurements of the two resources a
long-running placement service can exhaust: bytes under a directory tree
(:func:`dir_usage_bytes`, the service root's footprint) and the process'
resident set (:func:`process_rss_bytes`).  The service governor samples
both on its poll loop and publishes them as ``resource_*`` gauges.

**The write guard** — :func:`guarded_write` wraps one durable write
(a journal append, a checkpoint rename, a warm-artifact copy) so that
``OSError ENOSPC`` degrades instead of killing the daemon:

1. an installed degradation hook is notified (structured, best-effort);
2. an installed emergency-GC hook runs — the governor's quota collector,
   which frees terminal run dirs and compacts caches;
3. the write is retried once;
4. a write that *still* fails raises :class:`ResourceExhaustedError`,
   a transient :class:`~repro.runtime.errors.PlacementError` — the
   attempt fails and re-enters the existing retry/backoff machinery,
   the daemon survives.

The ``disk.enospc`` fault site is polled before every guarded attempt,
so chaos drills can exhaust "disk" deterministically on any machine:
``Fault("disk.enospc", at=1)`` fails the first guarded write and lets
the retry succeed (degradation exercised, result unchanged), while
``count=None`` simulates a disk that never frees (attempt quarantined,
daemon alive).  Hooks are installed by the service governor
(:class:`repro.service.governor.ResourceGovernor`); library code and
tests may install their own via :func:`install_guard`.
"""

from __future__ import annotations

import errno
import os
import shutil
import threading
from dataclasses import dataclass

from repro.runtime import faults
from repro.runtime.errors import ResourceExhaustedError

#: fault site polled by every guarded write attempt
ENOSPC_SITE = "disk.enospc"


# -- probes -------------------------------------------------------------------
def disk_free_bytes(path: str) -> int:
    """Free bytes on the filesystem holding *path* (0 when unstatable)."""
    try:
        return shutil.disk_usage(path).free
    except OSError:
        return 0


def dir_usage_bytes(root: str) -> int:
    """Total ``st_size`` bytes under *root* (0 when missing).

    Iterative scandir walk; symlinks are not followed and unreadable
    entries are skipped — the probe must never raise out of a poll loop.
    """
    total = 0
    stack = [root]
    while stack:
        path = stack.pop()
        try:
            with os.scandir(path) as entries:
                for entry in entries:
                    try:
                        if entry.is_dir(follow_symlinks=False):
                            stack.append(entry.path)
                        elif entry.is_file(follow_symlinks=False):
                            total += entry.stat(follow_symlinks=False).st_size
                    except OSError:
                        continue
        except OSError:
            continue
    return total


def process_rss_bytes() -> int:
    """Resident-set size of this process in bytes (0 when unmeasurable).

    Reads ``/proc/self/status`` (Linux); falls back to ``ru_maxrss``
    (peak, not current — still a usable upper bound) elsewhere.
    """
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


# -- guard hooks --------------------------------------------------------------
@dataclass
class GuardHooks:
    """Callbacks one guard installation contributes.

    ``on_degradation(info: dict)`` observes every ENOSPC degradation
    (best-effort: exceptions are swallowed — a full disk must not make
    the *report* of a full disk fatal).  ``emergency_gc()`` should free
    space and may return a summary dict; it too is best-effort.
    """

    on_degradation: object = None
    emergency_gc: object = None


#: installed hook stack; :func:`guarded_write` uses the most recent
_HOOKS: list[GuardHooks] = []
#: re-entrancy latch: an emergency GC pass whose *own* writes hit ENOSPC
#: must not recurse into another GC pass
_IN_GC = threading.local()


def install_guard(on_degradation=None, emergency_gc=None) -> GuardHooks:
    """Install degradation/GC hooks; returns a handle for removal."""
    hooks = GuardHooks(on_degradation, emergency_gc)
    _HOOKS.append(hooks)
    return hooks


def uninstall_guard(hooks: GuardHooks) -> None:
    try:
        _HOOKS.remove(hooks)
    except ValueError:
        pass


def _current_hooks() -> GuardHooks | None:
    return _HOOKS[-1] if _HOOKS else None


def _notify_degradation(label: str, attempt: int, exc: OSError) -> None:
    hooks = _current_hooks()
    if hooks is None or hooks.on_degradation is None:
        return
    try:
        hooks.on_degradation(
            {
                "event": "degradation",
                "solver": "resources",
                "fallback": "emergency_gc",
                "site": ENOSPC_SITE,
                "label": label,
                "attempt": attempt,
                "errno": exc.errno,
            }
        )
    except Exception:
        pass  # reporting is best-effort by contract


def _run_emergency_gc() -> None:
    hooks = _current_hooks()
    if hooks is None or hooks.emergency_gc is None:
        return
    if getattr(_IN_GC, "active", False):
        return  # a GC pass is already running on this thread
    _IN_GC.active = True
    try:
        hooks.emergency_gc()
    except Exception:
        pass  # GC is best-effort; the retry decides the outcome
    finally:
        _IN_GC.active = False


# -- the guard ----------------------------------------------------------------
def guarded_write(label: str, write, retries: int = 1):
    """Run *write()* with ENOSPC degradation; returns its result.

    Non-ENOSPC ``OSError`` passes through untouched (callers keep their
    existing handling for permission races etc.).  ENOSPC — real, or
    injected via the ``disk.enospc`` fault site — triggers degradation
    notification, one emergency-GC pass, and up to *retries* re-attempts
    before raising :class:`ResourceExhaustedError` (transient: it fails
    the attempt, not the daemon).
    """
    attempt = 0
    while True:
        try:
            if faults.should_fire(ENOSPC_SITE):
                raise OSError(
                    errno.ENOSPC, f"injected ENOSPC during {label}"
                )
            return write()
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            _notify_degradation(label, attempt, exc)
            if attempt >= retries:
                raise ResourceExhaustedError(
                    f"out of disk space during {label} "
                    f"(after {attempt + 1} attempts and an emergency GC pass)",
                    label=label,
                    attempts=attempt + 1,
                ) from exc
            _run_emergency_gc()
            attempt += 1
