"""Study analysis: fold per-job results into one consolidated report.

The report answers the three questions a sweep is run to answer:

- **Pareto front** — which configs are undominated on HPWL vs runtime
  (runtime = the *search-side* stage seconds when the job's result file
  carries a stage breakdown, so warm and cold points compare fairly;
  whole-job seconds otherwise);
- **sensitivity** — per swept knob, the mean HPWL at each value
  marginalized over every other axis and the seeds, with bootstrap CIs
  (:func:`repro.analysis.stats.bootstrap_mean_ci`) and the value spread;
- **best config** — the lowest-HPWL completed point (ties broken by
  runtime).

It also folds in the warm-cache evidence: per-fingerprint counters from
``metrics.json`` plus the authoritative per-run manifest tags
(``stages.rl_training.warm``), which survive daemon restarts where the
in-memory counters do not.  ``one_cold_per_fingerprint`` is the study's
headline efficiency claim, checked rather than assumed.

Reports persist twice: ``<study_dir>/report.json`` (latest, for the CLI
and CI gates) and an :class:`~repro.experiments.records.RecordStore`
history under ``<study_dir>/records/`` for append-and-compare workflows.
"""

from __future__ import annotations

import json
import os

from repro.experiments.records import ExperimentRecord, RecordStore
from repro.service.jobs import DONE, ServicePaths, write_json_atomic

#: stages whose seconds count as "search runtime" — everything after
#: pre-training, so a warm point's runtime is comparable to a cold one's
SEARCH_STAGES = ("mcts", "final", "cell_legalization", "verify")


def pareto_front(rows: list[dict]) -> list[int]:
    """Indices of rows undominated on (hpwl, runtime), both minimized.

    Sorted by hpwl ascending; rows missing either metric never make the
    front.  Duplicate metric pairs keep their first row only.
    """
    candidates = [
        (i, float(r["hpwl"]), float(r["runtime"]))
        for i, r in enumerate(rows)
        if r.get("hpwl") is not None and r.get("runtime") is not None
    ]
    candidates.sort(key=lambda t: (t[1], t[2]))
    front: list[int] = []
    best_runtime = float("inf")
    seen: set[tuple[float, float]] = set()
    for i, hpwl, runtime in candidates:
        if runtime < best_runtime and (hpwl, runtime) not in seen:
            front.append(i)
            best_runtime = runtime
            seen.add((hpwl, runtime))
    return front


def axis_sensitivity(axes, rows: list[dict]) -> dict:
    """Per-knob marginal effect on HPWL.

    For each axis, completed rows are bucketed by that axis's value
    (marginalizing over the other axes and seeds); each bucket reports
    its sample count, mean HPWL, and — with two or more samples — a
    bootstrap CI.  ``spread`` (max mean − min mean) is the knob's
    marginal leverage, and ``best`` its lowest-mean value.
    """
    from repro.analysis.stats import bootstrap_mean_ci

    out: dict[str, dict] = {}
    for axis in axes:
        buckets: dict[str, list[float]] = {}
        labels: dict[str, object] = {}
        for row in rows:
            if row.get("hpwl") is None:
                continue
            value = dict(row["values"]).get(axis.knob)
            label = json.dumps(value)
            buckets.setdefault(label, []).append(float(row["hpwl"]))
            labels[label] = value
        entries = []
        for label in sorted(buckets, key=lambda k: str(labels[k])):
            samples = buckets[label]
            entry = {
                "value": labels[label],
                "n": len(samples),
                "mean": float(sum(samples) / len(samples)),
            }
            if len(samples) >= 2:
                ci = bootstrap_mean_ci(samples, rng=0)
                entry["low"], entry["high"] = ci.low, ci.high
            entries.append(entry)
        means = [e["mean"] for e in entries]
        out[axis.knob] = {
            "values": entries,
            "spread": (max(means) - min(means)) if means else 0.0,
            "best": (
                entries[min(range(len(means)), key=means.__getitem__)]["value"]
                if means else None
            ),
        }
    return out


def _search_runtime(result: dict | None, fallback) -> float | None:
    """Search-side seconds from a result file's stage breakdown."""
    if result:
        stage_seconds = result.get("stage_seconds") or {}
        total = sum(
            float(stage_seconds.get(stage, 0.0)) for stage in SEARCH_STAGES
        )
        if total > 0.0:
            return round(total, 6)
    return fallback


def _manifest_warm(run_dir: str) -> dict:
    """The run's authoritative pre-training provenance.

    Returns ``{"completed": bool, "warm": bool}`` for the rl_training
    stage of the run-dir manifest — the durable record of whether this
    run actually trained (cold) or was injected (warm), regardless of
    which daemon incarnation ran it or how it was later resumed.
    """
    path = os.path.join(run_dir, "manifest.json")
    try:
        with open(path) as f:
            stage = json.load(f).get("stages", {}).get("rl_training", {})
    except (OSError, json.JSONDecodeError):
        return {"completed": False, "warm": False}
    return {
        "completed": bool(stage.get("completed")),
        "warm": bool(stage.get("warm")),
    }


def build_report(study, service_dir: str) -> dict:
    """Assemble the consolidated report for *study* against *service_dir*."""
    paths = ServicePaths(service_dir)
    status = study.status()
    rows = []
    failures = []
    for point in status["points"]:
        result = None
        result_path = paths.result_file(point["job_id"])
        if os.path.exists(result_path):
            with open(result_path) as f:
                result = json.load(f)
        row = {
            "point_id": point["point_id"],
            "index": point["index"],
            "job_id": point["job_id"],
            "seed": point["seed"],
            "values": point["values"],
            "state": point["state"],
            "hpwl": point.get("hpwl"),
            "seconds": point.get("seconds"),
            "runtime": _search_runtime(result, point.get("seconds")),
            "warm_hit": point.get("warm_hit"),
            "pretrain": _manifest_warm(paths.run_dir(point["job_id"])),
        }
        rows.append(row)
        if point["state"] not in (DONE, "PENDING", "SUBMITTED"):
            failures.append({
                "point_id": point["point_id"],
                "state": point["state"],
                "error": (result or {}).get("error"),
            })
    done = [r for r in rows if r["state"] == DONE]
    front = pareto_front(done)
    best = None
    if done:
        ranked = sorted(
            (r for r in done if r["hpwl"] is not None),
            key=lambda r: (r["hpwl"], r["runtime"] or float("inf")),
        )
        best = ranked[0] if ranked else None

    # Warm-sharing evidence: manifest tags (durable) + live counters.
    groups = []
    all_single_cold = True
    by_id = {r["point_id"]: r for r in rows}
    for group in study.plan():
        members = [by_id[pid] for pid in group.point_ids]
        cold = sum(
            1 for m in members
            if m["pretrain"]["completed"] and not m["pretrain"]["warm"]
        )
        warm = sum(1 for m in members if m["pretrain"]["warm"])
        done_members = sum(1 for m in members if m["state"] == DONE)
        if done_members and cold != 1:
            all_single_cold = False
        groups.append({
            "fingerprint": group.key,
            "points": len(members),
            "done": done_members,
            "cold_pretrains": cold,
            "warm_reuses": warm,
        })
    warm_counters = None
    if os.path.exists(paths.metrics):
        try:
            with open(paths.metrics) as f:
                warm_counters = json.load(f).get("warm_fingerprints")
        except (OSError, json.JSONDecodeError):
            warm_counters = None

    report = {
        "study": status["name"],
        "spec_fingerprint": status["fingerprint"],
        "spec": study.spec.to_json(),
        "total_points": status["total"],
        "counts": status["counts"],
        "complete": status["complete"],
        "points": rows,
        "pareto_front": [done[i]["point_id"] for i in front],
        "pareto": [
            {k: done[i][k] for k in
             ("point_id", "values", "seed", "hpwl", "runtime")}
            for i in front
        ],
        "sensitivity": axis_sensitivity(study.spec.axes, done),
        "best": best,
        "warm_groups": groups,
        "one_cold_per_fingerprint": all_single_cold,
        "warm_fingerprint_counters": warm_counters,
        "failures": failures,
    }
    return report


def save_report(study, report: dict) -> str:
    """Persist the report (latest file + record-store history)."""
    write_json_atomic(study.paths.report, report)
    store = RecordStore(study.paths.records)
    store.save(
        ExperimentRecord(
            experiment=f"study-{study.spec.name}",
            data=report,
            budget="study",
        )
    )
    return study.paths.report


def render_report(report: dict) -> str:
    """Human-readable rendering for ``repro study report``."""
    lines = [
        f"study {report['study']}  "
        f"[{report['spec_fingerprint']}]  "
        f"{report['counts'].get('DONE', 0)}/{report['total_points']} done"
        + ("" if report["complete"] else "  (incomplete)"),
    ]
    if report["best"]:
        b = report["best"]
        knobs = ", ".join(f"{k}={v}" for k, v in b["values"]) or "(baseline)"
        lines.append(
            f"best: HPWL {b['hpwl']:.1f}  runtime {b['runtime']:.2f}s  "
            f"seed {b['seed']}  {knobs}"
        )
    lines.append(f"pareto front ({len(report['pareto'])} points):")
    for entry in report["pareto"]:
        knobs = ", ".join(f"{k}={v}" for k, v in entry["values"]) or "(baseline)"
        lines.append(
            f"  HPWL {entry['hpwl']:.1f}  runtime {entry['runtime']:.2f}s  "
            f"seed {entry['seed']}  {knobs}"
        )
    if report["sensitivity"]:
        lines.append("sensitivity (mean HPWL by value, marginalized):")
        for knob, sens in report["sensitivity"].items():
            parts = ", ".join(
                f"{e['value']}: {e['mean']:.1f} (n={e['n']})"
                for e in sens["values"]
            )
            lines.append(
                f"  {knob}: spread {sens['spread']:.1f}, "
                f"best {sens['best']}  [{parts}]"
            )
    lines.append("warm sharing (one cold pre-train per fingerprint: "
                 f"{'yes' if report['one_cold_per_fingerprint'] else 'NO'}):")
    for group in report["warm_groups"]:
        lines.append(
            f"  {group['fingerprint']}: {group['points']} points, "
            f"{group['cold_pretrains']} cold, {group['warm_reuses']} warm"
        )
    for failure in report["failures"]:
        lines.append(
            f"  FAILED {failure['point_id']} [{failure['state']}]: "
            f"{(failure.get('error') or {}).get('message', '?')}"
        )
    return "\n".join(lines)
