"""Design-space-exploration studies: sweep specs → warm-aware job DAGs
→ Pareto reports.

The study engine is the orchestration layer on top of the placement
service (PRs 4–8): a declarative :class:`~repro.study.spec.StudySpec`
expands into deterministic :class:`~repro.study.spec.StudyPoint`\\ s, a
:class:`~repro.study.engine.Study` drives them through the service/fleet
inbox grouped by pre-training fingerprint (one cold pre-train per unique
fingerprint, warm reuse for the rest), and
:func:`~repro.study.report.build_report` folds the results into a
Pareto-front + per-knob-sensitivity report.  CLI: ``repro study
run/status/report``.
"""

from repro.study.engine import Study, StudyPaths
from repro.study.report import (
    axis_sensitivity,
    build_report,
    pareto_front,
    render_report,
    save_report,
)
from repro.study.spec import MAX_POINTS, StudyPoint, StudySpec, SweepAxis

__all__ = [
    "MAX_POINTS",
    "Study",
    "StudyPaths",
    "StudyPoint",
    "StudySpec",
    "SweepAxis",
    "axis_sensitivity",
    "build_report",
    "pareto_front",
    "render_report",
    "save_report",
]
