"""Declarative sweep specs and their expansion into study points.

A *study spec* describes a design-space exploration declaratively: a
design source (suite circuit or Bookshelf ``.aux``), a config preset, a
seed list, and a set of *axes* — each axis naming one dotted-path
:class:`~repro.core.config.PlacerConfig` knob and the values to sweep it
over (an explicit list, or a linear/log grid).  :meth:`StudySpec.expand`
takes the cartesian product of the axes (seeds innermost), filters it
through optional constraints, and yields deterministic, content-addressed
:class:`StudyPoint`\\ s — the same spec always expands to the same points
in the same order, with the same ids, which is what makes a killed study
resumable without resubmitting anything.

Specs load from JSON or TOML (``tomllib``; no third-party dependency)::

    {
      "name": "zeta-gamma",
      "circuit": "ibm01", "scale": 0.004, "macro_scale": 0.04,
      "preset": "fast",
      "seeds": [0, 1],
      "axes": [
        {"knob": "zeta", "values": [0.6, 0.9]},
        {"knob": "gamma_params", "values": [[3.0, 0.25], [4.0, 0.25]]}
      ],
      "constraints": [
        {"exclude": {"zeta": 0.6, "gamma_params": [4.0, 0.25]}}
      ]
    }

Every knob value is validated at parse time by probing it through
:func:`repro.core.config.apply_overrides` — an unknown knob, a reserved
execution knob, or a type-invalid value fails fast with the full field
list, before anything is submitted.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field, replace

from repro.runtime.errors import UsageError

#: expansion safety cap: a spec whose raw product exceeds this is almost
#: certainly a typo'd grid, not a study anyone will wait for
MAX_POINTS = 4096

#: knobs that must be swept via ``seeds``, not an axis (the expansion
#: puts seeds innermost and tags points with them explicitly)
_SEED_KNOBS = frozenset({"seed", "seeds"})


def _grid_values(grid: dict, knob: str) -> tuple:
    """Expand a ``{"start", "stop", "count", ...}`` grid description."""
    try:
        start = float(grid["start"])
        stop = float(grid["stop"])
        count = int(grid["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise UsageError(
            f"axis {knob!r}: grid needs numeric 'start'/'stop' and "
            "integer 'count'",
            grid=grid,
        ) from exc
    if count < 1:
        raise UsageError(f"axis {knob!r}: grid count must be >= 1", grid=grid)
    spacing = grid.get("spacing", "linear")
    if spacing not in ("linear", "log"):
        raise UsageError(
            f"axis {knob!r}: spacing must be 'linear' or 'log'", grid=grid
        )
    if spacing == "log" and (start <= 0 or stop <= 0):
        raise UsageError(
            f"axis {knob!r}: log spacing needs positive endpoints", grid=grid
        )
    if count == 1:
        values = [start]
    elif spacing == "linear":
        step = (stop - start) / (count - 1)
        values = [start + i * step for i in range(count)]
        values[-1] = stop  # exact endpoint, no float drift
    else:
        import math

        lo, hi = math.log(start), math.log(stop)
        step = (hi - lo) / (count - 1)
        values = [math.exp(lo + i * step) for i in range(count)]
        values[0], values[-1] = start, stop
    digits = grid.get("round")
    if digits is not None:
        values = [round(v, int(digits)) for v in values]
    if grid.get("dtype") == "int":
        values = [int(round(v)) for v in values]
    return tuple(values)


@dataclass(frozen=True)
class SweepAxis:
    """One swept knob and its value list (grids are resolved at parse)."""

    knob: str
    values: tuple

    @classmethod
    def from_json(cls, payload: dict) -> "SweepAxis":
        if not isinstance(payload, dict) or not payload.get("knob"):
            raise UsageError("each axis needs a 'knob' name", axis=payload)
        knob = str(payload["knob"])
        if knob in _SEED_KNOBS:
            raise UsageError(
                "sweep seeds via the top-level 'seeds' list, not an axis",
                axis=payload,
            )
        has_values = "values" in payload
        has_grid = "grid" in payload
        if has_values == has_grid:
            raise UsageError(
                f"axis {knob!r} needs exactly one of 'values' or 'grid'",
                axis=payload,
            )
        if has_values:
            raw = payload["values"]
            if not isinstance(raw, (list, tuple)) or not raw:
                raise UsageError(
                    f"axis {knob!r}: 'values' must be a non-empty list",
                    axis=payload,
                )
            values = tuple(
                tuple(v) if isinstance(v, list) else v for v in raw
            )
        else:
            values = _grid_values(payload["grid"], knob)
        return cls(knob=knob, values=values)

    def to_json(self) -> dict:
        return {
            "knob": self.knob,
            "values": [
                list(v) if isinstance(v, tuple) else v for v in self.values
            ],
        }


# -- constraints -------------------------------------------------------------
_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


def _normalize(value):
    return tuple(value) if isinstance(value, list) else value


def _conds_match(conds: dict, assignment: dict) -> bool:
    """Does *assignment* (knob -> value) satisfy every condition?

    A condition value is either a scalar (equality) or an operator dict
    like ``{"le": 2.5}`` / ``{"in": [0.5, 1.05]}``.
    """
    for knob, cond in conds.items():
        if knob not in assignment:
            raise UsageError(
                f"constraint references {knob!r}, which is not a swept axis",
                constraint=conds,
            )
        actual = _normalize(assignment[knob])
        if isinstance(cond, dict):
            for op, operand in cond.items():
                fn = _OPS.get(op)
                if fn is None:
                    raise UsageError(
                        f"unknown constraint operator {op!r}; choose from "
                        f"{sorted(_OPS)}",
                        constraint=conds,
                    )
                operand = _normalize(operand)
                if op == "in":
                    operand = tuple(_normalize(v) for v in operand)
                if not fn(actual, operand):
                    return False
        elif actual != _normalize(cond):
            return False
    return True


def _passes_constraints(constraints: tuple, assignment: dict) -> bool:
    for constraint in constraints:
        if "exclude" in constraint and _conds_match(
            constraint["exclude"], assignment
        ):
            return False
        if "require" in constraint and not _conds_match(
            constraint["require"], assignment
        ):
            return False
    return True


# -- points ------------------------------------------------------------------
@dataclass(frozen=True)
class StudyPoint:
    """One expanded sweep point: a knob assignment plus a seed.

    ``point_id`` is a content hash of the point's full job identity
    (design source, preset, seed, overrides, execution knobs), so the
    derived job id is deterministic: resubmitting the same point is
    idempotent at the service inbox, which is the whole crash-safety
    story of ``repro study run``.
    """

    index: int
    point_id: str
    seed: int
    #: ``(knob, value)`` pairs in axis order
    values: tuple

    def assignment(self) -> dict:
        return dict(self.values)

    @property
    def job_id(self) -> str:
        return f"study-{self.point_id}"

    def to_job_spec(self, spec: "StudySpec"):
        from repro.service.jobs import JobSpec

        return JobSpec(
            circuit=spec.circuit,
            aux=spec.aux,
            scale=spec.scale,
            macro_scale=spec.macro_scale,
            preset=spec.preset,
            seed=self.seed,
            terminal_workers=spec.terminal_workers,
            budget_seconds=spec.budget_seconds,
            overrides=self.values or None,
        )

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "point_id": self.point_id,
            "seed": self.seed,
            "values": [[k, list(v) if isinstance(v, tuple) else v]
                       for k, v in self.values],
        }


# -- the spec ----------------------------------------------------------------
@dataclass(frozen=True)
class StudySpec:
    """A declarative design-space-exploration study."""

    name: str
    circuit: str | None = None
    aux: str | None = None
    scale: float = 0.01
    macro_scale: float = 0.08
    preset: str = "fast"
    seeds: tuple = (0,)
    axes: tuple = ()
    constraints: tuple = ()
    priority: int = 0
    budget_seconds: float | None = None
    terminal_workers: int = 1
    max_points: int = field(default=MAX_POINTS)

    # -- parsing --------------------------------------------------------------
    @classmethod
    def from_json(cls, payload: dict) -> "StudySpec":
        if not isinstance(payload, dict):
            raise UsageError("study spec must be a JSON/TOML table")
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise UsageError(
                f"unknown study spec keys {sorted(unknown)}",
                known=sorted(cls.__dataclass_fields__),
            )
        axes = tuple(
            SweepAxis.from_json(axis) for axis in payload.get("axes", ())
        )
        seeds = payload.get("seeds", [0])
        if not isinstance(seeds, (list, tuple)) or not seeds:
            raise UsageError("'seeds' must be a non-empty list of integers")
        constraints = payload.get("constraints", ())
        known = {
            k: payload[k]
            for k in cls.__dataclass_fields__
            if k in payload and k not in ("axes", "seeds", "constraints")
        }
        spec = cls(
            axes=axes,
            seeds=tuple(int(s) for s in seeds),
            constraints=tuple(constraints),
            **known,
        )
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: str) -> "StudySpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        if not os.path.exists(path):
            raise UsageError(f"study spec not found: {path}")
        if path.endswith(".toml"):
            import tomllib

            with open(path, "rb") as f:
                try:
                    payload = tomllib.load(f)
                except tomllib.TOMLDecodeError as exc:
                    raise UsageError(
                        f"study spec is not valid TOML: {exc}", path=path
                    ) from exc
        else:
            with open(path) as f:
                try:
                    payload = json.load(f)
                except json.JSONDecodeError as exc:
                    raise UsageError(
                        f"study spec is not valid JSON: {exc}", path=path
                    ) from exc
        return cls.from_json(payload)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "circuit": self.circuit,
            "aux": self.aux,
            "scale": self.scale,
            "macro_scale": self.macro_scale,
            "preset": self.preset,
            "seeds": list(self.seeds),
            "axes": [axis.to_json() for axis in self.axes],
            "constraints": [dict(c) for c in self.constraints],
            "priority": self.priority,
            "budget_seconds": self.budget_seconds,
            "terminal_workers": self.terminal_workers,
            "max_points": self.max_points,
        }

    def fingerprint(self) -> str:
        """Content hash guarding a study dir against spec drift."""
        text = json.dumps(self.to_json(), sort_keys=True, default=str)
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    # -- validation -----------------------------------------------------------
    def validate(self) -> None:
        from repro.core.config import PlacerConfig, apply_overrides
        from repro.service.jobs import JobSpec

        if not self.name:
            raise UsageError("study spec needs a 'name'")
        # Reuse the job spec's own validation for design/preset fields.
        JobSpec(
            circuit=self.circuit, aux=self.aux, preset=self.preset
        ).validate()
        knobs = [axis.knob for axis in self.axes]
        if len(set(knobs)) != len(knobs):
            raise UsageError(f"duplicate axis knobs in {knobs}")
        raw = len(self.seeds)
        for axis in self.axes:
            raw *= len(axis.values)
        if raw > self.max_points:
            raise UsageError(
                f"spec expands to {raw} raw points, over the "
                f"{self.max_points}-point cap",
                axes={a.knob: len(a.values) for a in self.axes},
                seeds=len(self.seeds),
            )
        # Probe every axis value through the real override machinery so a
        # bad knob/value fails at parse time, not mid-study.
        base = getattr(PlacerConfig, self.preset)() \
            if self.preset != "paper" else PlacerConfig.paper()
        for axis in self.axes:
            for value in axis.values:
                apply_overrides(base, {axis.knob: value})
        for constraint in self.constraints:
            if not isinstance(constraint, dict) or not (
                set(constraint) <= {"exclude", "require"} and constraint
            ):
                raise UsageError(
                    "each constraint is {'exclude': {...}} or "
                    "{'require': {...}}",
                    constraint=constraint,
                )

    # -- expansion ------------------------------------------------------------
    def expand(self) -> tuple[StudyPoint, ...]:
        """The deterministic point list: axis product, seeds innermost,
        constraints applied, indexed after filtering."""
        self.validate()
        points: list[StudyPoint] = []
        seen: set[str] = set()
        value_lists = [axis.values for axis in self.axes]
        for combo in itertools.product(*value_lists):
            assignment = {
                axis.knob: value for axis, value in zip(self.axes, combo)
            }
            if not _passes_constraints(self.constraints, assignment):
                continue
            values = tuple(zip([a.knob for a in self.axes], combo))
            for seed in self.seeds:
                point = StudyPoint(
                    index=len(points),
                    point_id=_point_id(self, seed, values),
                    seed=seed,
                    values=values,
                )
                if point.point_id in seen:
                    continue  # duplicate axis values collapse to one job
                seen.add(point.point_id)
                points.append(point)
        if not points:
            raise UsageError(
                "constraints filtered out every point", name=self.name
            )
        return tuple(points)


def _point_id(spec: StudySpec, seed: int, values: tuple) -> str:
    """Hash of the point's *job identity* — everything that decides what
    the job computes — so identical points across studies (or across a
    re-created study dir) share one job id and dedupe at the inbox."""
    payload = {
        "circuit": spec.circuit,
        "aux": spec.aux,
        "scale": spec.scale,
        "macro_scale": spec.macro_scale,
        "preset": spec.preset,
        "terminal_workers": spec.terminal_workers,
        "budget_seconds": spec.budget_seconds,
        "seed": seed,
        "values": [[k, list(v) if isinstance(v, tuple) else v]
                   for k, v in values],
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:12]
