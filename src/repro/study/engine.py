"""Study orchestration: spec → warm-aware job DAG → placement service.

A :class:`Study` lives in its own directory::

    <study_dir>/
      spec.json        # the frozen StudySpec (drift-guarded by fingerprint)
      journal.jsonl    # append-only point-state journal (crash-safe)
      report.json      # latest consolidated report (study.report)
      records/         # experiments.records.RecordStore history

The engine's one scheduling idea is the **warm DAG**: points are grouped
by pre-training fingerprint (:func:`repro.service.warm.warm_key` of
their expanded config × the design), and each group submits a single
*leader* first.  Only once the leader is DONE — by which time the
daemon has stored the pre-training artifacts in the
:class:`~repro.service.warm.WarmArtifactCache`, since the store happens
before the DONE transition — are the *followers* released, so every
unique fingerprint pays for exactly one cold pre-train and the rest of
the group runs warm, bit-for-bit identical to cold.  A leader that fails
or is quarantined just promotes the next pending point of its group to
cold leader; the study routes around poison points instead of wedging.

Crash safety mirrors the service's own journal discipline: every point
transition is a single atomic ``append_jsonl`` write, replay tolerates a
torn tail, and job ids are content-addressed
(:attr:`~repro.study.spec.StudyPoint.job_id`), so the worst a kill can
cause is one idempotent resubmission that the service inbox dedupes.
DONE points are never resubmitted.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.runtime.errors import UsageError
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUARANTINED,
    JobStore,
    ServicePaths,
    write_json_atomic,
)
from repro.service.service import PlacementService, request_stop, submit_job
from repro.service.warm import warm_key
from repro.study.spec import StudySpec
from repro.utils.events import append_jsonl, read_jsonl

#: study-point states: PENDING (not yet dropped in the inbox), SUBMITTED
#: (inbox file written / job seen in the service journal), then the
#: service's own terminal states adopted verbatim
PENDING = "PENDING"
SUBMITTED = "SUBMITTED"
POINT_TERMINAL = (DONE, FAILED, CANCELLED, QUARANTINED)


class StudyPaths:
    """File layout of one study directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.spec = os.path.join(root, "spec.json")
        self.journal = os.path.join(root, "journal.jsonl")
        self.report = os.path.join(root, "report.json")
        self.records = os.path.join(root, "records")

    def ensure(self) -> "StudyPaths":
        os.makedirs(self.root, exist_ok=True)
        return self


class StudyGroup:
    """All points sharing one pre-training fingerprint."""

    def __init__(self, key: str) -> None:
        self.key = key
        self.point_ids: list[str] = []


class Study:
    """One study: a frozen spec, its expanded points, and their journal."""

    def __init__(self, root: str, spec: StudySpec) -> None:
        self.paths = StudyPaths(root).ensure()
        self.spec = spec
        self.points = spec.expand()
        self._by_id = {p.point_id: p for p in self.points}
        self._groups: list[StudyGroup] | None = None
        self._design = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def create(cls, root: str, spec: StudySpec) -> "Study":
        """Initialise a study dir (idempotent for the same spec)."""
        study = cls(root, spec)
        if os.path.exists(study.paths.spec):
            study._check_fingerprint()
        else:
            write_json_atomic(study.paths.spec, spec.to_json())
        return study

    @classmethod
    def load(cls, root: str) -> "Study":
        paths = StudyPaths(root)
        if not os.path.exists(paths.spec):
            raise UsageError(f"no study at {root} (missing spec.json)")
        with open(paths.spec) as f:
            spec = StudySpec.from_json(json.load(f))
        return cls(root, spec)

    def _check_fingerprint(self) -> None:
        with open(self.paths.spec) as f:
            existing = StudySpec.from_json(json.load(f))
        if existing.fingerprint() != self.spec.fingerprint():
            raise UsageError(
                "study dir was created from a different spec; use a fresh "
                "directory (point ids would not line up)",
                study_dir=self.paths.root,
                expected=existing.fingerprint(),
                got=self.spec.fingerprint(),
            )

    # -- planning --------------------------------------------------------------
    def design(self):
        if self._design is None:
            _name, self._design = self.points[0].to_job_spec(
                self.spec
            ).build_design()
        return self._design

    def plan(self) -> list[StudyGroup]:
        """Group points by pre-training fingerprint, in point order.

        The design is built once (it is common to every point); each
        point's expanded config is fingerprinted exactly the way the
        daemon will fingerprint it when deciding warm injection, so the
        grouping here *is* the cache's sharing structure.
        """
        if self._groups is None:
            design = self.design()
            groups: dict[str, StudyGroup] = {}
            for point in self.points:
                config = point.to_job_spec(self.spec).build_config()
                key = warm_key(config, design)
                groups.setdefault(key, StudyGroup(key)).point_ids.append(
                    point.point_id
                )
            self._groups = list(groups.values())
        return self._groups

    # -- journal ---------------------------------------------------------------
    def _journal(self, point_id: str, state: str, **extra) -> None:
        append_jsonl(
            self.paths.journal,
            {"record": "point", "id": point_id, "state": state,
             "ts": round(time.time(), 3), **extra},
            fsync=True,
        )

    def journal_states(self) -> dict[str, dict]:
        """Replay the journal into ``point_id -> latest record``.

        Terminal states are sticky (first terminal wins, like the
        service journal) and SUBMITTED never regresses to PENDING, so a
        replayed table equals the live one no matter where a kill landed.
        """
        states: dict[str, dict] = {}
        for record in read_jsonl(self.paths.journal):
            if record.get("record") != "point":
                continue
            point_id = record.get("id")
            state = record.get("state")
            if point_id not in self._by_id or state not in (
                (PENDING, SUBMITTED) + POINT_TERMINAL
            ):
                continue
            current = states.get(point_id)
            if current is not None:
                if current["state"] in POINT_TERMINAL:
                    continue
                if current["state"] == SUBMITTED and state == PENDING:
                    continue
            states[point_id] = record
        for point in self.points:
            states.setdefault(
                point.point_id, {"id": point.point_id, "state": PENDING}
            )
        return states

    # -- running ---------------------------------------------------------------
    def run(
        self,
        service_dir: str,
        serve: bool = False,
        workers: int = 1,
        poll: float = 0.25,
        max_seconds: float | None = None,
        tick=None,
    ) -> dict:
        """Drive the study to completion (or until *max_seconds*).

        With ``serve=True`` an inline :class:`PlacementService` daemon is
        started in a thread (single-host convenience; CI's study-smoke
        uses it); otherwise a daemon/fleet must already be serving
        *service_dir*.  *tick*, when given, is called once per loop with
        the study — the test harness uses it to stand in for a daemon.

        Always safe to re-run: the journal + deterministic job ids make
        resubmission idempotent, and DONE points are skipped entirely.
        """
        self._check_fingerprint()
        started = time.monotonic()
        service_thread = None
        service = None
        if serve:
            service = PlacementService(service_dir, workers=workers)
            service_thread = threading.Thread(
                target=service.run, name="study-service", daemon=True
            )
            service_thread.start()
        try:
            while True:
                states = self.step(service_dir)
                if all(
                    rec["state"] in POINT_TERMINAL for rec in states.values()
                ):
                    break
                if tick is not None:
                    tick(self)
                if (max_seconds is not None
                        and time.monotonic() - started >= max_seconds):
                    break
                time.sleep(poll)
        finally:
            if service_thread is not None:
                request_stop(service_dir)
                service_thread.join(timeout=60.0)
        return self.status()

    def step(self, service_dir: str) -> dict[str, dict]:
        """One scheduling cycle: reconcile with the service journal, then
        submit every point the warm DAG allows.  Returns the post-cycle
        state table."""
        states = self.journal_states()
        self._reconcile(service_dir, states)
        self._submit_ready(service_dir, states)
        return states

    def _reconcile(self, service_dir: str, states: dict[str, dict]) -> None:
        """Adopt the service journal's view of every submitted point.

        Also repairs the one crash window submission has: an inbox file
        dropped (or even admitted) before our SUBMITTED append landed
        shows up here as a PENDING point whose job already exists — it
        is journalled SUBMITTED instead of resubmitted.
        """
        store = JobStore(ServicePaths(service_dir).journal).load()
        for point in self.points:
            record = states[point.point_id]
            if record["state"] in POINT_TERMINAL:
                continue
            job = store.get(point.job_id)
            if job is None:
                continue
            if record["state"] == PENDING:
                record = {"id": point.point_id, "state": SUBMITTED}
                states[point.point_id] = record
                self._journal(point.point_id, SUBMITTED, job_id=point.job_id)
            if job.terminal:
                extra = {
                    "job_id": job.id,
                    "hpwl": job.hpwl,
                    "seconds": job.seconds,
                    "warm_hit": job.warm_hit,
                }
                if job.error:
                    extra["error"] = job.error
                states[point.point_id] = {
                    "id": point.point_id, "state": job.state, **extra,
                }
                self._journal(point.point_id, job.state, **extra)

    def _submit_ready(
        self, service_dir: str, states: dict[str, dict]
    ) -> None:
        """Release points group by group along the warm DAG."""
        for group in self.plan():
            group_states = [states[pid]["state"] for pid in group.point_ids]
            pending = [
                pid for pid, st in zip(group.point_ids, group_states)
                if st == PENDING
            ]
            if not pending:
                continue
            if DONE in group_states:
                # Warm artifacts exist (stored before the leader's DONE
                # transition): release the whole group.
                release = pending
            elif SUBMITTED in group_states:
                release = []  # leader in flight; hold the followers
            else:
                # No leader yet, or every prior leader failed: promote
                # the first pending point to (cold) leader.
                release = pending[:1]
            for point_id in release:
                point = self._by_id[point_id]
                submit_job(
                    service_dir,
                    point.to_job_spec(self.spec),
                    priority=self.spec.priority,
                    job_id=point.job_id,
                )
                states[point_id] = {"id": point_id, "state": SUBMITTED}
                self._journal(point_id, SUBMITTED, job_id=point.job_id)

    # -- status ----------------------------------------------------------------
    def status(self, service_dir: str | None = None) -> dict:
        """Study progress from the journal.

        With *service_dir*, live job states are overlaid in memory (no
        journal writes), so ``repro study status`` from a second
        terminal sees RUNNING work the next ``run`` cycle will adopt.
        """
        states = self.journal_states()
        if service_dir is not None:
            store = JobStore(ServicePaths(service_dir).journal).load()
            for point in self.points:
                record = states[point.point_id]
                if record["state"] in POINT_TERMINAL:
                    continue
                job = store.get(point.job_id)
                if job is None:
                    continue
                adopted = job.state if job.terminal else SUBMITTED
                states[point.point_id] = {
                    **record, "state": adopted, "hpwl": job.hpwl,
                    "seconds": job.seconds, "warm_hit": job.warm_hit,
                }
        counts: dict[str, int] = {
            s: 0 for s in (PENDING, SUBMITTED) + POINT_TERMINAL
        }
        for record in states.values():
            counts[record["state"]] += 1
        groups = []
        for group in self.plan():
            group_counts: dict[str, int] = {}
            for pid in group.point_ids:
                st = states[pid]["state"]
                group_counts[st] = group_counts.get(st, 0) + 1
            groups.append({
                "fingerprint": group.key,
                "points": len(group.point_ids),
                "states": group_counts,
            })
        return {
            "name": self.spec.name,
            "fingerprint": self.spec.fingerprint(),
            "total": len(self.points),
            "counts": counts,
            "complete": counts[PENDING] == 0 and counts[SUBMITTED] == 0,
            "groups": groups,
            "points": [
                {
                    **self._by_id[pid].to_json(),
                    "state": rec["state"],
                    "hpwl": rec.get("hpwl"),
                    "seconds": rec.get("seconds"),
                    "warm_hit": rec.get("warm_hit"),
                    "job_id": self._by_id[pid].job_id,
                }
                for pid, rec in (
                    (p.point_id, states[p.point_id]) for p in self.points
                )
            ],
        }
