"""Row-based standard-cell legalization (Tetris / Hill-style).

The analytical cell placement (Sec. II-C) leaves standard cells at
fractional, possibly overlapping positions — sufficient for HPWL
measurement, but not a legal placement.  This module snaps cells onto
rows, displacement-greedy:

1. build rows from the placement region and a row height, subtracting
   *blockages* (macros) so each row becomes a list of free segments;
2. process cells in order of increasing x (the classic Tetris scan);
3. each cell takes the free position minimizing its displacement among
   candidate rows near its analytical y, packing left-to-right within a
   segment.

This is the standard greedy legalizer every academic flow ships; it
completes the reproduction's "full placement result" claim and is used by
the ``legalize_cells=True`` option of the flow's final stage and the
``python -m repro place --legal-cells`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.model import Design, Node


@dataclass
class _Segment:
    """A free interval [x_lo, x_hi) in one row; ``cursor`` packs left→right."""

    x_lo: float
    x_hi: float
    cursor: float = 0.0

    def __post_init__(self) -> None:
        self.cursor = self.x_lo

    @property
    def free(self) -> float:
        return self.x_hi - self.cursor


@dataclass
class _Row:
    y: float
    segments: list[_Segment] = field(default_factory=list)


def _build_rows(
    design: Design, row_height: float, blockages: list[Node]
) -> list[_Row]:
    region = design.region
    n_rows = max(int(region.height // row_height), 1)
    rows: list[_Row] = []
    for r in range(n_rows):
        y = region.y + r * row_height
        # Start with the full row, then carve out blockage intervals.
        intervals: list[tuple[float, float]] = [(region.x, region.x_max)]
        for b in blockages:
            if b.y >= y + row_height or b.y + b.height <= y:
                continue
            carved: list[tuple[float, float]] = []
            for lo, hi in intervals:
                if b.x >= hi or b.x + b.width <= lo:
                    carved.append((lo, hi))
                    continue
                if b.x > lo:
                    carved.append((lo, b.x))
                if b.x + b.width < hi:
                    carved.append((b.x + b.width, hi))
            intervals = carved
        rows.append(
            _Row(y=y, segments=[_Segment(lo, hi) for lo, hi in intervals if hi > lo])
        )
    return rows


@dataclass
class CellLegalizationResult:
    """Outcome summary of a legalization pass."""

    placed: int
    failed: int
    total_displacement: float

    @property
    def success(self) -> bool:
        return self.failed == 0


def legalize_cells(
    design: Design,
    row_height: float | None = None,
    row_search_span: int = 6,
) -> CellLegalizationResult:
    """Snap all standard cells onto legal row positions (greedy Tetris).

    Macros (movable and preplaced) are blockages.  ``row_search_span``
    bounds how many rows above/below a cell's analytical row are tried.
    Returns placement statistics; cells that found no free slot (fully
    congested die) keep their analytical position and are counted in
    ``failed``.
    """
    cells = sorted(design.netlist.cells, key=lambda c: c.x)
    if not cells:
        return CellLegalizationResult(placed=0, failed=0, total_displacement=0.0)
    if row_height is None:
        row_height = min(c.height for c in cells)
    blockages = list(design.netlist.macros)
    rows = _build_rows(design, row_height, blockages)
    if not rows:
        return CellLegalizationResult(
            placed=0, failed=len(cells), total_displacement=0.0
        )

    region = design.region
    placed = 0
    failed = 0
    total_disp = 0.0
    retry: list = []
    for cell in cells:
        target_row = int((cell.y - region.y) / row_height)
        best: tuple[float, _Segment, float, float] | None = None
        # Search rows by increasing distance so the early exit below is
        # sound: once the best displacement is smaller than the next ring's
        # unavoidable vertical displacement, farther rows cannot win.
        for dr in sorted(range(-row_search_span, row_search_span + 1), key=abs):
            if best is not None and best[0] < abs(dr) * row_height:
                break
            r = target_row + dr
            if not 0 <= r < len(rows):
                continue
            row = rows[r]
            for seg in row.segments:
                if seg.free < cell.width:
                    continue
                # Packing discipline: never before the cursor.
                x = max(seg.cursor, min(cell.x, seg.x_hi - cell.width))
                if x + cell.width > seg.x_hi:
                    continue
                disp = abs(x - cell.x) + abs(row.y - cell.y)
                if best is None or disp < best[0]:
                    best = (disp, seg, x, row.y)
        if best is None:
            retry.append(cell)
            continue
        disp, seg, x, y = best
        cell.x = x
        cell.y = y
        seg.cursor = x + cell.width
        placed += 1
        total_disp += disp

    # Second pass: cells that found no slot near their row scan every row
    # (displacement no longer matters — legality does).
    for cell in retry:
        best = None
        for row in rows:
            for seg in row.segments:
                if seg.free < cell.width:
                    continue
                x = max(seg.cursor, min(cell.x, seg.x_hi - cell.width))
                if x + cell.width > seg.x_hi:
                    continue
                disp = abs(x - cell.x) + abs(row.y - cell.y)
                if best is None or disp < best[0]:
                    best = (disp, seg, x, row.y)
        if best is None:
            failed += 1
            continue
        disp, seg, x, y = best
        cell.x = x
        cell.y = y
        seg.cursor = x + cell.width
        placed += 1
        total_disp += disp
    return CellLegalizationResult(
        placed=placed, failed=failed, total_displacement=total_disp
    )
