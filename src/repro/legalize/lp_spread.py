"""LP-based overlap removal minimizing weighted wirelength (Eq. 3) [34].

Given sequence-pair constraint edges for one axis, solve

    min Σ_n λ_n · (u_n − l_n)
    s.t. p_a + size_a ≤ p_b            for every constraint edge (a, b)
         l_n ≤ p_i + c_{i,n} ≤ u_n     for every movable pin of net n
         l_n ≤ q ≤ u_n                 for every fixed-pin constant q of n
         lo ≤ p_i ≤ hi − size_i

where p_i are lower-left coordinates along the axis and u_n/l_n capture the
net's span (so u_n − l_n is hW(n) or vW(n)).  The x and y problems are
independent, exactly as the paper notes.

If the LP is infeasible (the rectangles simply cannot fit in [lo, hi] under
the sequence-pair order) or the solver fails, :func:`pack_longest_path`
compacts the rectangles toward ``lo`` instead and the result is clamped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.optimize as sopt
import scipy.sparse as sp

from repro.runtime import faults
from repro.runtime.errors import SolverInfeasibleError


@dataclass
class AxisNet:
    """One net's footprint along a single axis.

    ``pins`` holds (rect_index, offset) pairs: the pin sits at
    ``p[rect_index] + offset``.  ``fixed_positions`` are absolute pin
    coordinates of nodes outside the legalization set.
    """

    weight: float = 1.0
    pins: list[tuple[int, float]] = field(default_factory=list)
    fixed_positions: list[float] = field(default_factory=list)


def pack_longest_path(
    sizes: np.ndarray, edges: list[tuple[int, int]], lo: float
) -> np.ndarray:
    """Compact rectangles toward *lo* honoring the constraint edges.

    The constraint graph from a sequence pair is acyclic, so iterative
    relaxation converges in at most n rounds; rectangle *b* ends at
    ``max(lo, max_{(a,b)} p_a + size_a)``.
    """
    n = len(sizes)
    pos = np.full(n, lo, dtype=float)
    for _ in range(max(n, 1)):
        changed = False
        for a, b in edges:
            need = pos[a] + sizes[a]
            if pos[b] < need - 1e-12:
                pos[b] = need
                changed = True
        if not changed:
            break
    return pos


def lp_solve_axis(
    sizes: np.ndarray,
    edges: list[tuple[int, int]],
    lo: float,
    hi: float,
    nets: list[AxisNet],
) -> np.ndarray:
    """Solve the Eq. 3 LP for one axis; returns lower-left coordinates.

    Raises :class:`SolverInfeasibleError` when the LP is infeasible or the
    solver errors — use :func:`lp_legalize_axis` for the degrading wrapper
    that falls back to greedy packing instead.  The fault-injection site
    ``lp.solve`` simulates solver failure here.
    """
    sizes = np.asarray(sizes, dtype=float)
    n = len(sizes)
    if n == 0:
        return np.zeros(0)

    if faults.should_fire("lp.solve"):
        raise SolverInfeasibleError(
            "injected LP solver failure", solver="linprog", status="injected"
        )

    n_nets = len(nets)
    n_vars = n + 2 * n_nets  # p_0..p_{n-1}, then (u, l) per net

    c = np.zeros(n_vars)
    for k, net in enumerate(nets):
        c[n + 2 * k] = net.weight  # +u
        c[n + 2 * k + 1] = -net.weight  # -l

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs: list[float] = []

    def add_row(terms: list[tuple[int, float]], ub: float) -> None:
        r = len(rhs)
        for col, v in terms:
            rows.append(r)
            cols.append(col)
            vals.append(v)
        rhs.append(ub)

    for a, b in edges:
        # p_a - p_b <= -size_a
        add_row([(a, 1.0), (b, -1.0)], -float(sizes[a]))

    for k, net in enumerate(nets):
        u, l = n + 2 * k, n + 2 * k + 1
        for i, off in net.pins:
            add_row([(i, 1.0), (u, -1.0)], -off)  # p_i + off <= u
            add_row([(l, 1.0), (i, -1.0)], off)  # l <= p_i + off
        for q in net.fixed_positions:
            add_row([(u, -1.0)], -q)  # u >= q
            add_row([(l, 1.0)], q)  # l <= q

    span = max(hi - lo, 1.0)
    bounds: list[tuple[float, float]] = []
    for i in range(n):
        upper = hi - float(sizes[i])
        if upper < lo:
            upper = lo  # degenerate: rectangle wider than region
        bounds.append((lo, upper))
    for _ in range(n_nets):
        bounds.append((lo - 10 * span, hi + 10 * span))  # u
        bounds.append((lo - 10 * span, hi + 10 * span))  # l

    A = sp.coo_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
        shape=(len(rhs), n_vars),
    ).tocsr()

    try:
        res = sopt.linprog(
            c,
            A_ub=A,
            b_ub=np.asarray(rhs),
            bounds=bounds,
            method="highs",
        )
    except ValueError as exc:
        raise SolverInfeasibleError(
            f"LP solver raised: {exc}", solver="linprog", status="error"
        ) from exc

    if not res.success:
        raise SolverInfeasibleError(
            f"LP did not converge: {res.message}",
            solver="linprog",
            status=int(res.status),
        )
    return np.asarray(res.x[:n], dtype=float)


def lp_legalize_axis(
    sizes: np.ndarray,
    edges: list[tuple[int, int]],
    lo: float,
    hi: float,
    nets: list[AxisNet],
    fallback_clamp: bool = True,
    max_attempts: int = 2,
    on_degrade=None,
) -> np.ndarray:
    """Retry-with-fallback wrapper around :func:`lp_solve_axis`.

    The LP is attempted up to *max_attempts* times (solver failures are
    occasionally transient); when all attempts fail the axis degrades to
    :func:`pack_longest_path` — compaction toward ``lo`` honoring the
    sequence-pair order — and *on_degrade* (if given) is called with the
    terminal :class:`SolverInfeasibleError` so callers can record a
    degradation event instead of crashing.  With *fallback_clamp* the
    packed positions are clamped into ``[lo, hi]`` (overlap may then
    remain — the caller decides how to handle residual overflow).
    """
    sizes = np.asarray(sizes, dtype=float)
    if len(sizes) == 0:
        return np.zeros(0)
    error: SolverInfeasibleError | None = None
    for _attempt in range(max(1, max_attempts)):
        try:
            return lp_solve_axis(sizes, edges, lo, hi, nets)
        except SolverInfeasibleError as exc:
            error = exc
            if exc.details.get("status") != "error":
                break  # deterministic infeasibility: retrying cannot help
    if on_degrade is not None:
        on_degrade(error)
    packed = pack_longest_path(sizes, edges, lo)
    if fallback_clamp:
        packed = np.minimum(packed, np.maximum(hi - sizes, lo))
    return packed
