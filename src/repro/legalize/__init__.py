"""Macro legalization (Sec. II-B).

Three steps, after macro groups are allocated to grids by RL or MCTS:

1. cell groups placed by quadratic programming with macro groups fixed at
   their grid centers;
2. macro groups decomposed; member macros refined by QP with cell groups
   fixed, each macro confined to its group's grid span;
3. per-region overlap removal: geometric relations captured as a sequence
   pair [28], overlaps removed by an LP minimizing weighted one-dimensional
   wirelength (Eq. 3) [34].
"""

from repro.legalize.sequence_pair import SequencePair, extract_sequence_pair
from repro.legalize.lp_spread import lp_legalize_axis, pack_longest_path
from repro.legalize.pipeline import IncrementalMacroLegalizer, MacroLegalizer
from repro.legalize.cells import CellLegalizationResult, legalize_cells

__all__ = [
    "CellLegalizationResult",
    "IncrementalMacroLegalizer",
    "MacroLegalizer",
    "SequencePair",
    "extract_sequence_pair",
    "legalize_cells",
    "lp_legalize_axis",
    "pack_longest_path",
]
