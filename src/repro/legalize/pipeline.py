"""The three-step macro legalization pipeline (Sec. II-B).

Input: a :class:`~repro.coarsen.coarse.CoarseNetlist` and an *assignment*
mapping each macro group to its anchor grid (the lower-left grid of the
group's span).  Output: exact, overlap-free macro coordinates written into
the underlying design.

Step 1 — cell groups by QP, macro groups fixed at their span centers.
Step 2 — groups decomposed; member macros refined by QP with cell groups
         fixed, then each macro clamped into its group's span rectangle.
Step 3 — per-group overlap removal: sequence pair extraction + the Eq. 3
         LP along x then y, inside the span rectangle.

Groups that were allocated to overlapping spans (the availability mask
discourages but cannot always prevent this) may still collide *across*
groups; a final greedy displacement-minimal repair pass
(:func:`repro.gp.mixed_size.legalize_macros_greedy`) clears residual
overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coarsen.coarse import CoarseNetlist
from repro.gp.mixed_size import legalize_macros_greedy
from repro.gp.quadratic import FactorizationCache, solve_quadratic_placement
from repro.legalize.lp_spread import AxisNet, lp_legalize_axis
from repro.legalize.sequence_pair import extract_sequence_pair
from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import NodeKind
from repro.runtime import faults
from repro.runtime.errors import PlacementError, SolverInfeasibleError
from repro.utils.events import EventLog


@dataclass(frozen=True)
class SpanRect:
    """A macro group's assigned rectangle in die coordinates."""

    x: float
    y: float
    width: float
    height: float

    @property
    def cx(self) -> float:
        return self.x + self.width / 2.0

    @property
    def cy(self) -> float:
        return self.y + self.height / 2.0


def anchor_for_span(
    plan, flat_grid: int, rows: int, cols: int
) -> tuple[int, int]:
    """Clamp an anchor grid so a rows×cols span stays inside the plan."""
    r, c = plan.row_col(flat_grid)
    r = min(r, plan.zeta - rows)
    c = min(c, plan.zeta - cols)
    return max(r, 0), max(c, 0)


def span_rect(coarse: CoarseNetlist, group_index: int, flat_grid: int) -> SpanRect:
    """Die-coordinate rectangle covered by *group_index* anchored at *flat_grid*."""
    plan = coarse.plan
    rows, cols = coarse.group_span(group_index)
    r, c = anchor_for_span(plan, flat_grid, rows, cols)
    ox, oy = plan.origin(r, c)
    return SpanRect(
        x=ox, y=oy, width=cols * plan.cell_width, height=rows * plan.cell_height
    )


class MacroLegalizer:
    """Runs the Sec. II-B pipeline against a coarse netlist."""

    def __init__(
        self,
        lp_net_limit: int = 200,
        cleanup: bool = True,
        qp_clique_threshold: int = 6,
        events: EventLog | None = None,
    ) -> None:
        self.lp_net_limit = lp_net_limit
        self.cleanup = cleanup
        self.qp_clique_threshold = qp_clique_threshold
        #: degradation events (solver fallbacks) are recorded here
        self.events = events if events is not None else EventLog()
        #: optional :class:`~repro.gp.quadratic.FactorizationCache` threaded
        #: into every QP solve; ``None`` here, installed by
        #: :class:`IncrementalMacroLegalizer`
        self.factor_cache: FactorizationCache | None = None

    # -- solver guards ---------------------------------------------------------
    def _guarded_qp(self, step: str, flat: FlatNetlist, movable, center) -> None:
        """QP solve that degrades to a no-op on solver failure.

        The placement positions feeding the QP are always valid (prototype /
        scatter coordinates), so skipping the refinement is a sound — if
        lower-quality — fallback; the LP/greedy overlap removal that follows
        still produces a legal placement.  Fault site: ``qp.solve``.
        """
        try:
            if faults.should_fire("qp.solve"):
                raise SolverInfeasibleError(
                    "injected QP solver failure", solver="qp", status="injected"
                )
            solve_quadratic_placement(
                flat, movable, center,
                clique_threshold=self.qp_clique_threshold,
                factor_cache=self.factor_cache,
            )
        except PlacementError as exc:
            self.events.emit(
                "degradation", stage=None, solver="qp", step=step, error=str(exc)
            )
            return
        except (np.linalg.LinAlgError, ValueError) as exc:
            self.events.emit(
                "degradation", stage=None, solver="qp", step=step, error=str(exc)
            )
            return
        flat.writeback()

    # -- step 1 ---------------------------------------------------------------
    def _step1_netlist(self, coarse: CoarseNetlist):
        """The coarse netlist step 1 solves over (subclass reuse hook)."""
        return coarse.as_netlist()

    def _place_cell_groups(
        self, coarse: CoarseNetlist, rects: list[SpanRect]
    ) -> None:
        """QP the coarse netlist with macro groups pinned to their spans."""
        coarse_nl = self._step1_netlist(coarse)
        for i, rect in enumerate(rects):
            node = coarse_nl[coarse.group_node_name(i)]
            node.move_center_to(rect.cx, rect.cy)
            node.fixed = True
        flat = FlatNetlist(coarse_nl)
        movable = ~flat.fixed
        region = coarse.design.region
        center = (region.x + region.width / 2.0, region.y + region.height / 2.0)
        self._guarded_qp("cell_groups", flat, movable, center)
        # Record solved centroids back onto the cell groups.
        n_mg = coarse.n_macro_groups
        for j, g in enumerate(coarse.cell_groups):
            node = coarse_nl[coarse.group_node_name(n_mg + j)]
            g.cx, g.cy = node.cx, node.cy

    # -- step 2 ---------------------------------------------------------------
    def _refine_macros(self, coarse: CoarseNetlist, rects: list[SpanRect]) -> None:
        """Scatter groups, pin cells to their group centroids, QP the macros."""
        design = coarse.design
        for i, rect in enumerate(rects):
            coarse.scatter_macro_group(i, rect.cx, rect.cy)
        for g in coarse.cell_groups:
            for name in g.members:
                design.netlist[name].move_center_to(g.cx, g.cy)

        flat = FlatNetlist(design.netlist)
        movable = np.zeros(flat.n_nodes, dtype=bool)
        for i, node in enumerate(design.netlist):
            movable[i] = node.kind is NodeKind.MACRO and not node.fixed
        region = design.region
        center = (region.x + region.width / 2.0, region.y + region.height / 2.0)
        self._guarded_qp("macro_refine", flat, movable, center)

        # Confine each macro to its group's span rectangle.
        rect_of_macro: dict[str, SpanRect] = {}
        for i, g in enumerate(coarse.macro_groups):
            for name in g.members:
                rect_of_macro[name] = rects[i]
        for name, rect in rect_of_macro.items():
            node = design.netlist[name]
            node.x = min(max(node.x, rect.x), max(rect.x, rect.x + rect.width - node.width))
            node.y = min(
                max(node.y, rect.y), max(rect.y, rect.y + rect.height - node.height)
            )

    # -- step 3 ---------------------------------------------------------------
    def _axis_nets(
        self,
        coarse: CoarseNetlist,
        member_index: dict[str, int],
        axis: str,
    ) -> list[AxisNet]:
        """Project original nets touching the region's macros onto one axis."""
        design = coarse.design
        nets: list[AxisNet] = []
        for net in design.netlist.nets:
            movable_pins: list[tuple[int, float]] = []
            fixed_positions: list[float] = []
            for pin in net.pins:
                node = design.netlist[pin.node]
                if pin.node in member_index:
                    if axis == "x":
                        off = node.width / 2.0 + pin.dx
                    else:
                        off = node.height / 2.0 + pin.dy
                    movable_pins.append((member_index[pin.node], off))
                else:
                    if axis == "x":
                        fixed_positions.append(node.cx + pin.dx)
                    else:
                        fixed_positions.append(node.cy + pin.dy)
            if movable_pins:
                nets.append(
                    AxisNet(
                        weight=net.weight,
                        pins=movable_pins,
                        fixed_positions=fixed_positions[:4],
                    )
                )
        nets.sort(key=lambda n: -n.weight)
        return nets[: self.lp_net_limit]

    def _legalize_region(
        self, coarse: CoarseNetlist, group_index: int, rect: SpanRect
    ) -> None:
        design = coarse.design
        members = [
            design.netlist[name]
            for name in coarse.macro_groups[group_index].members
        ]
        if len(members) == 0:
            return
        member_index = {m.name: k for k, m in enumerate(members)}
        xs = np.array([m.x for m in members])
        ys = np.array([m.y for m in members])
        ws = np.array([m.width for m in members])
        hs = np.array([m.height for m in members])

        if len(members) == 1:
            m = members[0]
            m.x = min(max(m.x, rect.x), max(rect.x, rect.x + rect.width - m.width))
            m.y = min(max(m.y, rect.y), max(rect.y, rect.y + rect.height - m.height))
            return

        sp_pair = extract_sequence_pair(xs, ys, ws, hs)
        h_edges, v_edges = sp_pair.relations()

        def degrade(axis):
            return lambda exc: self.events.emit(
                "degradation",
                solver="lp",
                fallback="pack_longest_path",
                axis=axis,
                group=group_index,
                error=str(exc),
            )

        x_nets = self._axis_nets(coarse, member_index, "x")
        new_x = lp_legalize_axis(
            ws, h_edges, rect.x, rect.x + rect.width, x_nets,
            on_degrade=degrade("x"),
        )
        for k, m in enumerate(members):
            m.x = float(new_x[k])

        y_nets = self._axis_nets(coarse, member_index, "y")
        new_y = lp_legalize_axis(
            hs, v_edges, rect.y, rect.y + rect.height, y_nets,
            on_degrade=degrade("y"),
        )
        for k, m in enumerate(members):
            m.y = float(new_y[k])

    # -- entry point ------------------------------------------------------------
    def legalize(self, coarse: CoarseNetlist, assignment: list[int]) -> None:
        """Run all three steps for *assignment* (anchor grid per macro group).

        Mutates macro positions in ``coarse.design``.  Cell positions are
        also touched (pinned at their group centroids) — the flow's final
        cell-placement step re-places them properly afterwards.

        Every call first rewinds the coarse netlist to its canonical start
        (:meth:`CoarseNetlist.restore_canonical`), so the result is a pure
        function of *assignment*: bitwise-identical no matter what was
        legalized before.
        """
        if len(assignment) != coarse.n_macro_groups:
            raise ValueError(
                f"assignment covers {len(assignment)} groups, "
                f"expected {coarse.n_macro_groups}"
            )
        coarse.restore_canonical()
        rects = [
            span_rect(coarse, i, int(flat_grid))
            for i, flat_grid in enumerate(assignment)
        ]
        self._place_cell_groups(coarse, rects)
        self._refine_macros(coarse, rects)
        for i, rect in enumerate(rects):
            self._legalize_region(coarse, i, rect)
        if self.cleanup:
            design = coarse.design
            blockers = (
                design.netlist.movable_macros + design.netlist.preplaced_macros
            )
            if any_pairwise_overlap(blockers):
                legalize_macros_greedy(design)


class IncrementalMacroLegalizer(MacroLegalizer):
    """Drop-in :class:`MacroLegalizer` that amortizes repeated structure.

    Consecutive terminal evaluations re-solve near-identical problems; three
    reuses cut the per-call cost while staying *bitwise-identical* to the
    from-scratch pipeline:

    - **QP factorization cache** — the step-1 and step-2 Laplacians depend
      only on connectivity and the movable mask, not on the assignment, so
      one LU factorization (keyed on the exact matrix bytes) serves every
      terminal evaluation; only the right-hand-side triangular solves run
      per call.
    - **Step-1 netlist reuse** — ``coarse.as_netlist()`` rebuilds the same
      object graph every call; one instance is kept and its node positions
      rewound to the first build's state before each solve.
    - **Axis-net topology precompile + per-group LP memo** — which nets
      survive :meth:`MacroLegalizer._axis_nets`'s weight sort and
      truncations is static, so the scan over all design nets compiles once
      per (group, axis); the sequence-pair + LP result for a group is
      additionally memoized against a digest of *all* its inputs (member
      positions, span rectangle, fixed pin positions).

    The LP memo is keyed on full inputs rather than "the spans the changed
    anchor touches" because the QP steps couple every group: a one-anchor
    change perturbs all member positions in their last bits, so a
    span-locality skip would not be bitwise-safe.  Memo hits therefore
    come from genuinely repeated sub-problems; the factorization cache and
    the precompiled topology carry the steady-state win.

    When a fault plan is installed (chaos drills) every reuse except the
    factorization cache is bypassed so injected-fault arrival counts stay
    canonical.  With ``self_check=True`` each call is replayed through a
    pristine from-scratch pipeline and every node position compared
    bitwise; a mismatch keeps the from-scratch result, drops all caches,
    and emits a ``degradation`` event (the equivalence gate the tests and
    benchmarks run under).
    """

    def __init__(
        self,
        lp_net_limit: int = 200,
        cleanup: bool = True,
        qp_clique_threshold: int = 6,
        events: EventLog | None = None,
        self_check: bool = False,
    ) -> None:
        super().__init__(
            lp_net_limit=lp_net_limit,
            cleanup=cleanup,
            qp_clique_threshold=qp_clique_threshold,
            events=events,
        )
        self.self_check = self_check
        self.factor_cache = FactorizationCache()
        self._src: CoarseNetlist | None = None
        self._bypass = False
        self._step1_nl = None
        self._step1_positions: dict[str, tuple[float, float]] = {}
        #: (member-name tuple, axis) → [(weight, movable_pins, fixed_refs)]
        self._axis_topology: dict = {}
        #: full-input digest → (new_x, new_y) of one group's LP legalization
        self._region_memo: dict = {}
        self._region_memo_limit = 4096
        self.n_region_memo_hits = 0
        self.n_region_memo_misses = 0
        self.n_equivalence_failures = 0
        self.n_legalize_calls = 0

    def cache_stats(self) -> dict:
        return {
            "factor_hits": self.factor_cache.hits,
            "factor_misses": self.factor_cache.misses,
            "region_memo_hits": self.n_region_memo_hits,
            "region_memo_misses": self.n_region_memo_misses,
            "axis_topologies": len(self._axis_topology),
            "equivalence_failures": self.n_equivalence_failures,
            "legalize_calls": self.n_legalize_calls,
        }

    def _drop_caches(self) -> None:
        self.factor_cache = FactorizationCache()
        self._step1_nl = None
        self._step1_positions = {}
        self._axis_topology = {}
        self._region_memo = {}

    # -- step-1 netlist reuse --------------------------------------------------
    def _step1_netlist(self, coarse: CoarseNetlist):
        if self._bypass:
            return super()._step1_netlist(coarse)
        if self._step1_nl is None:
            self._step1_nl = super()._step1_netlist(coarse)
            self._step1_positions = {
                node.name: (node.x, node.y) for node in self._step1_nl
            }
        else:
            # rewind to the first build's positions so the reused netlist is
            # indistinguishable from a fresh as_netlist() — including on the
            # QP-degradation path, where pre-solve positions leak through
            for name, (x, y) in self._step1_positions.items():
                node = self._step1_nl[name]
                node.x = x
                node.y = y
        return self._step1_nl

    # -- axis-net topology precompile ------------------------------------------
    def _compile_axis_nets(self, coarse, member_index, axis):
        design = coarse.design
        entries: list[tuple[float, list, list]] = []
        for net in design.netlist.nets:
            movable_pins: list[tuple[int, float]] = []
            fixed_refs: list[tuple[object, float]] = []
            for pin in net.pins:
                node = design.netlist[pin.node]
                if pin.node in member_index:
                    if axis == "x":
                        off = node.width / 2.0 + pin.dx
                    else:
                        off = node.height / 2.0 + pin.dy
                    movable_pins.append((member_index[pin.node], off))
                else:
                    fixed_refs.append(
                        (node, pin.dx if axis == "x" else pin.dy)
                    )
            if movable_pins:
                # the base keeps only the first four fixed positions and the
                # lp_net_limit heaviest nets — both selections are static,
                # so they compile away
                entries.append((net.weight, movable_pins, fixed_refs[:4]))
        entries.sort(key=lambda e: -e[0])
        return entries[: self.lp_net_limit]

    def _axis_nets(self, coarse, member_index, axis):
        if self._bypass:
            return super()._axis_nets(coarse, member_index, axis)
        key = (tuple(member_index), axis)
        compiled = self._axis_topology.get(key)
        if compiled is None:
            compiled = self._compile_axis_nets(coarse, member_index, axis)
            self._axis_topology[key] = compiled
        if axis == "x":
            return [
                AxisNet(
                    weight=w,
                    pins=list(pins),
                    fixed_positions=[n.cx + d for n, d in refs],
                )
                for w, pins, refs in compiled
            ]
        return [
            AxisNet(
                weight=w,
                pins=list(pins),
                fixed_positions=[n.cy + d for n, d in refs],
            )
            for w, pins, refs in compiled
        ]

    # -- per-group LP memo -----------------------------------------------------
    def _legalize_region(self, coarse, group_index, rect) -> None:
        if self._bypass:
            super()._legalize_region(coarse, group_index, rect)
            return
        design = coarse.design
        members = [
            design.netlist[name]
            for name in coarse.macro_groups[group_index].members
        ]
        if len(members) < 2:
            super()._legalize_region(coarse, group_index, rect)
            return
        member_index = {m.name: k for k, m in enumerate(members)}
        x_fixed = tuple(
            tuple(n.fixed_positions)
            for n in self._axis_nets(coarse, member_index, "x")
        )
        y_fixed = tuple(
            tuple(n.fixed_positions)
            for n in self._axis_nets(coarse, member_index, "y")
        )
        key = (
            group_index,
            np.array([m.x for m in members]).tobytes(),
            np.array([m.y for m in members]).tobytes(),
            (rect.x, rect.y, rect.width, rect.height),
            x_fixed,
            y_fixed,
        )
        memo = self._region_memo.get(key)
        if memo is not None:
            new_x, new_y = memo
            for k, m in enumerate(members):
                m.x = new_x[k]
                m.y = new_y[k]
            self.n_region_memo_hits += 1
            return
        super()._legalize_region(coarse, group_index, rect)
        self.n_region_memo_misses += 1
        if len(self._region_memo) >= self._region_memo_limit:
            self._region_memo.pop(next(iter(self._region_memo)))
        self._region_memo[key] = (
            [m.x for m in members],
            [m.y for m in members],
        )

    # -- entry point -----------------------------------------------------------
    def legalize(self, coarse: CoarseNetlist, assignment: list[int]) -> None:
        if self._src is not coarse:
            self._drop_caches()
            self._src = coarse
        self._bypass = faults.active() is not None
        self.n_legalize_calls += 1
        super().legalize(coarse, assignment)
        if self.self_check and not self._bypass:
            incremental = {
                node.name: (node.x, node.y) for node in coarse.design.netlist
            }
            baseline = MacroLegalizer(
                lp_net_limit=self.lp_net_limit,
                cleanup=self.cleanup,
                qp_clique_threshold=self.qp_clique_threshold,
                events=self.events,
            )
            baseline.legalize(coarse, assignment)
            reference = {
                node.name: (node.x, node.y) for node in coarse.design.netlist
            }
            if incremental != reference:
                # keep the from-scratch result (it is what the design holds
                # now), drop every cache, and surface the mismatch
                self.n_equivalence_failures += 1
                self._drop_caches()
                self.events.emit(
                    "degradation",
                    solver="incremental_legalizer",
                    error="incremental result diverged from from-scratch; "
                    "caches dropped, from-scratch result kept",
                )


def any_pairwise_overlap(nodes) -> bool:
    """True when any two of *nodes* share positive interior area.

    Vectorized replacement for the quadratic pure-Python
    ``Node.overlaps`` double loop: one broadcast comparison per axis with
    the same strict-inequality semantics (edge-touching rectangles do not
    overlap).
    """
    n = len(nodes)
    if n < 2:
        return False
    x = np.array([m.x for m in nodes])
    y = np.array([m.y for m in nodes])
    x2 = x + np.array([m.width for m in nodes])
    y2 = y + np.array([m.height for m in nodes])
    over = (
        (x[:, None] < x2[None, :])
        & (x[None, :] < x2[:, None])
        & (y[:, None] < y2[None, :])
        & (y[None, :] < y2[:, None])
    )
    np.fill_diagonal(over, False)
    return bool(over.any())
