"""Sequence pair representation [28] (Murata et al.).

A sequence pair (S⁺, S⁻) encodes pairwise geometric relations between
rectangles:

- *a* before *b* in **both** sequences  ⇔ *a* is left of *b*;
- *a* before *b* in S⁺ and after in S⁻ ⇔ *a* is above *b*.

Extraction from an existing placement uses the classic sort construction:
S⁺ orders rectangles by center ``x − y``, S⁻ by ``x + y`` (ties broken by
index for determinism).  One can verify the two bullet relations hold for
any pair of disjoint rectangles whose dominant separation is horizontal
resp. vertical; for overlapping rectangles (the case legalization must
repair) the construction still yields *some* consistent relation, which the
LP then enforces with real spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SequencePair:
    """(S⁺, S⁻) over rectangle indices 0..n-1."""

    s_plus: tuple[int, ...]
    s_minus: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.s_plus)
        if sorted(self.s_plus) != list(range(n)) or sorted(self.s_minus) != list(
            range(n)
        ):
            raise ValueError("sequence pair must be two permutations of 0..n-1")

    @property
    def n(self) -> int:
        return len(self.s_plus)

    def relations(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Decode into (horizontal, vertical) constraint edges.

        Horizontal edge (a, b) means ``x_a + w_a <= x_b`` (a left of b);
        vertical edge (a, b) means ``y_a + h_a <= y_b`` (a below b).
        Only the transitive *reduction by pairs* is returned (all pairs,
        O(n²)), which is what the per-grid LP consumes — macro counts per
        grid are small.
        """
        pos_plus = {v: i for i, v in enumerate(self.s_plus)}
        pos_minus = {v: i for i, v in enumerate(self.s_minus)}
        horizontal: list[tuple[int, int]] = []
        vertical: list[tuple[int, int]] = []
        # Each unordered pair satisfies exactly one branch for exactly one
        # of its two orderings, so every pair yields exactly one edge.
        for a in range(self.n):
            for b in range(self.n):
                if a == b:
                    continue
                if pos_plus[a] < pos_plus[b] and pos_minus[a] < pos_minus[b]:
                    horizontal.append((a, b))  # a left of b
                elif pos_plus[a] < pos_plus[b] and pos_minus[a] > pos_minus[b]:
                    vertical.append((b, a))  # a above b -> b below a
        return horizontal, vertical


def extract_sequence_pair(
    xs: np.ndarray, ys: np.ndarray, widths: np.ndarray, heights: np.ndarray
) -> SequencePair:
    """Derive a sequence pair from rectangle centers.

    *xs*/*ys* are lower-left corners; centers drive the sort keys so that
    relative order is insensitive to rectangle size.
    """
    cx = np.asarray(xs) + np.asarray(widths) / 2.0
    cy = np.asarray(ys) + np.asarray(heights) / 2.0
    n = len(cx)
    idx = np.arange(n)
    s_plus = tuple(int(i) for i in sorted(idx, key=lambda i: (cx[i] - cy[i], i)))
    s_minus = tuple(int(i) for i in sorted(idx, key=lambda i: (cx[i] + cy[i], i)))
    return SequencePair(s_plus=s_plus, s_minus=s_minus)
