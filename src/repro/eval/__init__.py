"""Placement-quality metrics and the paper-style comparison tables."""

from repro.eval.metrics import (
    density_map,
    macro_overlap_area,
    out_of_region_area,
    placement_summary,
)
from repro.eval.congestion import CongestionReport, congestion_report, rudy_map
from repro.eval.report import ComparisonTable

__all__ = [
    "ComparisonTable",
    "CongestionReport",
    "congestion_report",
    "density_map",
    "macro_overlap_area",
    "out_of_region_area",
    "placement_summary",
    "rudy_map",
]
