"""Routing-congestion estimation (RUDY).

The paper optimizes HPWL only, but much of its related work ([7], [15],
[23]) is routability-driven; this module provides the standard RUDY
estimate (Rectangular Uniform wire DensitY — Spindler & Johannes, DATE'07)
so placements produced by any placer in this repository can be compared on
expected routing demand too:

    RUDY(bin) = Σ_nets  overlap(bin, bbox_net) · w_net · (w+h)/(w·h)

i.e. each net spreads a wire volume proportional to its half-perimeter
uniformly over its bounding box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import Design


@dataclass(frozen=True)
class CongestionReport:
    """Summary of a RUDY map."""

    peak: float
    mean: float
    p95: float
    overflow_fraction: float  # share of bins above 2x the mean demand

    def __str__(self) -> str:
        return (
            f"RUDY peak {self.peak:.3g}, mean {self.mean:.3g}, "
            f"p95 {self.p95:.3g}, overflowed bins "
            f"{self.overflow_fraction:.1%}"
        )


def rudy_map(design: Design, bins: int = 32) -> np.ndarray:
    """(bins, bins) RUDY wire-density map for the current placement."""
    flat = FlatNetlist(design.netlist)
    region = design.region
    bw = region.width / bins
    bh = region.height / bins
    out = np.zeros((bins, bins))
    if flat.n_nets == 0:
        return out
    px, py = flat.pin_positions()
    starts = flat.net_ptr[:-1]
    x_lo = np.minimum.reduceat(px, starts)
    x_hi = np.maximum.reduceat(px, starts)
    y_lo = np.minimum.reduceat(py, starts)
    y_hi = np.maximum.reduceat(py, starts)
    # Degenerate (zero-extent) boxes get a minimal footprint so their wire
    # volume still lands somewhere; widen the box itself so the bin-overlap
    # loop sees the same extent the density is computed from.
    w = np.maximum(x_hi - x_lo, bw * 1e-3)
    h = np.maximum(y_hi - y_lo, bh * 1e-3)
    x_hi = x_lo + w
    y_hi = y_lo + h
    density = flat.net_weight * (w + h) / (w * h)

    for k in range(flat.n_nets):
        c0 = int(np.floor((x_lo[k] - region.x) / bw))
        c1 = int(np.ceil((x_hi[k] - region.x) / bw))
        r0 = int(np.floor((y_lo[k] - region.y) / bh))
        r1 = int(np.ceil((y_hi[k] - region.y) / bh))
        for r in range(max(r0, 0), min(max(r1, r0 + 1), bins)):
            for c in range(max(c0, 0), min(max(c1, c0 + 1), bins)):
                bx_lo, by_lo = region.x + c * bw, region.y + r * bh
                ow = min(x_hi[k], bx_lo + bw) - max(x_lo[k], bx_lo)
                oh = min(y_hi[k], by_lo + bh) - max(y_lo[k], by_lo)
                if ow > 0 and oh > 0:
                    out[r, c] += density[k] * (ow * oh) / (bw * bh)
    return out


def congestion_report(design: Design, bins: int = 32) -> CongestionReport:
    """Compute the :class:`CongestionReport` of the current placement."""
    m = rudy_map(design, bins)
    mean = float(m.mean())
    overflow = float((m > 2.0 * mean).mean()) if mean > 0 else 0.0
    return CongestionReport(
        peak=float(m.max()),
        mean=mean,
        p95=float(np.quantile(m, 0.95)),
        overflow_fraction=overflow,
    )
