"""Paper-style comparison tables.

The paper's Tables II and III report per-circuit wirelength per method plus
a final "Nor." row: each method's mean wirelength ratio against the
proposed method.  :class:`ComparisonTable` renders the same layout from
benchmark results and computes the normalized row the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ComparisonTable:
    """Rows = circuits, columns = methods; values = wirelength (or runtime).

    ``reference`` names the method the "Nor." row normalizes against
    (the paper normalizes to "Ours").
    """

    methods: list[str]
    reference: str
    title: str = ""
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def add(self, circuit: str, method: str, value: float) -> None:
        if method not in self.methods:
            raise KeyError(f"unknown method {method!r} (have {self.methods})")
        self.rows.setdefault(circuit, {})[method] = value

    def normalized(self) -> dict[str, float]:
        """Mean per-circuit ratio of each method against the reference.

        Circuits missing either value are skipped (the paper likewise drops
        circuits a tool failed on, e.g. DREAMPlace on Cir7–8).
        """
        sums: dict[str, float] = {m: 0.0 for m in self.methods}
        counts: dict[str, int] = {m: 0 for m in self.methods}
        for values in self.rows.values():
            ref = values.get(self.reference)
            if ref is None or ref <= 0:
                continue
            for m in self.methods:
                v = values.get(m)
                if v is None:
                    continue
                sums[m] += v / ref
                counts[m] += 1
        return {
            m: (sums[m] / counts[m]) if counts[m] else float("nan")
            for m in self.methods
        }

    def render(self, value_format: str = "{:.1f}") -> str:
        """Monospace rendering with the trailing normalized row."""
        name_w = max([len("Circuit")] + [len(c) for c in self.rows])
        col_w = max([10] + [len(m) + 2 for m in self.methods])
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "Circuit".ljust(name_w) + "".join(
            m.rjust(col_w) for m in self.methods
        )
        lines.append(header)
        lines.append("-" * len(header))
        for circuit, values in self.rows.items():
            cells = []
            for m in self.methods:
                v = values.get(m)
                cells.append(
                    (value_format.format(v) if v is not None else "-").rjust(col_w)
                )
            lines.append(circuit.ljust(name_w) + "".join(cells))
        lines.append("-" * len(header))
        nor = self.normalized()
        lines.append(
            "Nor.".ljust(name_w)
            + "".join("{:.2f}".format(nor[m]).rjust(col_w) for m in self.methods)
        )
        return "\n".join(lines)
