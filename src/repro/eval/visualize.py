"""Placement visualization (SVG and terminal ASCII).

No plotting dependencies are available offline, so the SVG is emitted
directly: macros as filled rectangles (preplaced hatched darker), cells as
light dots, die outline, optional grid overlay — enough to eyeball a
placement or embed one in a report.
"""

from __future__ import annotations

from repro.grid.plan import GridPlan
from repro.netlist.model import Design

_SVG_HEADER = (
    '<svg xmlns="http://www.w3.org/2000/svg" viewBox="{vb}" '
    'width="{w}" height="{h}">'
)


def placement_svg(
    design: Design,
    plan: GridPlan | None = None,
    width: int = 640,
    show_cells: bool = True,
) -> str:
    """Render the current placement as an SVG string.

    The y axis is flipped so the geometric origin (lower-left) appears at
    the bottom, as in placement plots.
    """
    region = design.region
    scale = width / region.width
    height = int(region.height * scale)

    def sx(x: float) -> float:
        return (x - region.x) * scale

    def sy(y: float) -> float:
        return height - (y - region.y) * scale  # flip

    parts: list[str] = [
        _SVG_HEADER.format(vb=f"0 0 {width} {height}", w=width, h=height),
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        f'fill="#fafafa" stroke="#333" stroke-width="1.5"/>',
    ]

    if plan is not None:
        for i in range(1, plan.zeta):
            gx = sx(region.x + i * plan.cell_width)
            gy = sy(region.y + i * plan.cell_height)
            parts.append(
                f'<line x1="{gx:.1f}" y1="0" x2="{gx:.1f}" y2="{height}" '
                f'stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<line x1="0" y1="{gy:.1f}" x2="{width}" y2="{gy:.1f}" '
                f'stroke="#ddd" stroke-width="0.5"/>'
            )

    if show_cells:
        for cell in design.netlist.cells:
            parts.append(
                f'<circle cx="{sx(cell.cx):.1f}" cy="{sy(cell.cy):.1f}" '
                f'r="1" fill="#9ecae1"/>'
            )

    for macro in design.netlist.macros:
        color = "#636363" if macro.fixed else "#fd8d3c"
        parts.append(
            f'<rect x="{sx(macro.x):.1f}" y="{sy(macro.y + macro.height):.1f}" '
            f'width="{macro.width * scale:.1f}" '
            f'height="{macro.height * scale:.1f}" '
            f'fill="{color}" fill-opacity="0.75" stroke="#333" '
            f'stroke-width="0.8"/>'
        )
        if macro.width * scale > 24:
            parts.append(
                f'<text x="{sx(macro.cx):.1f}" y="{sy(macro.cy):.1f}" '
                f'font-size="8" text-anchor="middle" fill="#111">'
                f"{macro.name}</text>"
            )

    for pad in design.netlist.pads:
        parts.append(
            f'<rect x="{sx(pad.x):.1f}" y="{sy(pad.y + pad.height):.1f}" '
            f'width="{max(pad.width * scale, 2):.1f}" '
            f'height="{max(pad.height * scale, 2):.1f}" fill="#31a354"/>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_placement_svg(design: Design, path: str, **kwargs) -> str:
    """Write :func:`placement_svg` output to *path*; returns the path."""
    svg = placement_svg(design, **kwargs)
    with open(path, "w") as f:
        f.write(svg)
    return path


def placement_ascii(design: Design, cols: int = 48) -> str:
    """Coarse terminal rendering: '#' macro, '+' preplaced, '.' cells."""
    region = design.region
    rows = max(int(cols * region.height / region.width / 2), 4)
    grid = [[" "] * cols for _ in range(rows)]

    def mark(x: float, y: float, ch: str) -> None:
        c = int((x - region.x) / region.width * cols)
        r = int((y - region.y) / region.height * rows)
        if 0 <= r < rows and 0 <= c < cols:
            current = grid[rows - 1 - r][c]
            # macros overwrite cells, never the other way around
            if ch == "." and current != " ":
                return
            grid[rows - 1 - r][c] = ch

    for cell in design.netlist.cells:
        mark(cell.cx, cell.cy, ".")
    for macro in design.netlist.macros:
        ch = "+" if macro.fixed else "#"
        steps_x = max(int(macro.width / region.width * cols), 1)
        steps_y = max(int(macro.height / region.height * rows), 1)
        for i in range(steps_x + 1):
            for j in range(steps_y + 1):
                mark(
                    macro.x + macro.width * i / max(steps_x, 1),
                    macro.y + macro.height * j / max(steps_y, 1),
                    ch,
                )
    border = "+" + "-" * cols + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in grid] + [border])
