"""Placement-quality metrics beyond HPWL.

Legality metrics (overlap, out-of-region area) are what the legalization
tests assert on; the density map is a congestion proxy used by examples
and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import Design, Node


def macro_overlap_area(design: Design, include_preplaced: bool = True) -> float:
    """Total pairwise intersection area among macros (0 ⇔ legal)."""
    macros: list[Node] = list(design.netlist.movable_macros)
    if include_preplaced:
        macros += list(design.netlist.preplaced_macros)
    total = 0.0
    for i in range(len(macros)):
        for j in range(i + 1, len(macros)):
            total += macros[i].overlap_area(macros[j])
    return total


def out_of_region_area(design: Design) -> float:
    """Total macro area lying outside the placement region."""
    region = design.region
    total = 0.0
    for m in design.netlist.macros:
        w_in = min(m.x + m.width, region.x_max) - max(m.x, region.x)
        h_in = min(m.y + m.height, region.y_max) - max(m.y, region.y)
        inside = max(w_in, 0.0) * max(h_in, 0.0)
        total += m.area - inside
    return total


def density_map(design: Design, bins: int = 16) -> np.ndarray:
    """(bins, bins) occupied-area-fraction image over all non-pad nodes."""
    from repro.grid.plan import GridPlan
    from repro.netlist.model import NodeKind

    plan = GridPlan(design.region, zeta=bins)
    nodes = [n for n in design.netlist if n.kind is not NodeKind.PAD]
    return plan.occupancy(nodes)


@dataclass(frozen=True)
class PlacementSummary:
    """One-line quality record for a placement."""

    hpwl: float
    macro_overlap: float
    out_of_region: float
    peak_density: float

    @property
    def legal(self) -> bool:
        return self.macro_overlap < 1e-6 and self.out_of_region < 1e-6


def placement_summary(design: Design, bins: int = 16) -> PlacementSummary:
    """Compute the standard quality record for *design* as currently placed."""
    flat = FlatNetlist(design.netlist)
    return PlacementSummary(
        hpwl=flat.total_hpwl(),
        macro_overlap=macro_overlap_area(design),
        out_of_region=out_of_region_area(design),
        peak_density=float(density_map(design, bins).max()),
    )
