"""Netlist analysis and transformation utilities.

Helpers a downstream user needs when preparing designs for the flow:
net-degree statistics, net weighting policies, macro-only projections, and
connectivity summaries between node groups (the raw material of the Γ/φ
scores, exposed for inspection).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.netlist.model import Design, Net, Netlist, NodeKind, Pin


@dataclass(frozen=True)
class NetlistProfile:
    """Summary statistics of a netlist (degree histogram, pin counts...)."""

    n_nodes: int
    n_nets: int
    n_pins: int
    mean_degree: float
    max_degree: int
    degree_histogram: dict[int, int]
    macro_area_fraction: float

    def __str__(self) -> str:
        return (
            f"{self.n_nodes} nodes, {self.n_nets} nets, {self.n_pins} pins, "
            f"mean degree {self.mean_degree:.2f} (max {self.max_degree}), "
            f"macro area {self.macro_area_fraction:.0%}"
        )


def profile(netlist: Netlist) -> NetlistProfile:
    """Compute a :class:`NetlistProfile` for *netlist*."""
    degrees = [net.degree for net in netlist.nets]
    n_pins = sum(degrees)
    macro_area = sum(m.area for m in netlist.macros)
    cell_area = sum(c.area for c in netlist.cells)
    total = macro_area + cell_area
    return NetlistProfile(
        n_nodes=len(netlist),
        n_nets=len(netlist.nets),
        n_pins=n_pins,
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        degree_histogram=dict(Counter(degrees)),
        macro_area_fraction=macro_area / total if total > 0 else 0.0,
    )


def weight_nets_by_degree(
    netlist: Netlist, exponent: float = -0.5, base: float = 1.0
) -> None:
    """Set net weights to ``base · degree^exponent`` in place.

    A common pre-pass: de-emphasize high-fanout nets (negative exponent)
    so the quadratic model is not dominated by clock/reset trees.
    """
    for net in netlist.nets:
        if net.degree > 0:
            net.weight = base * float(net.degree) ** exponent


def macro_interface_netlist(design: Design) -> Netlist:
    """Project the design onto macros + pads only.

    Cells vanish; any net touching ≥ 2 distinct surviving nodes becomes a
    direct net between them (duplicate projections merge by weight
    accumulation).  This is the "indirect connectivity between macros"
    view the dataflow-aware placers ([23], [26]) operate on, and a compact
    input for floorplanning-style analysis.
    """
    src = design.netlist
    keep = {
        n.name for n in src if n.kind in (NodeKind.MACRO, NodeKind.PAD)
    }
    out = Netlist(name=f"{src.name}::macros")
    for node in src:
        if node.name in keep:
            cls = type(node)
            copy_node = cls(
                name=node.name,
                width=node.width,
                height=node.height,
                x=node.x,
                y=node.y,
                fixed=node.fixed,
                hierarchy=node.hierarchy,
            )
            out.add_node(copy_node)

    merged: dict[tuple[str, ...], float] = {}
    for net in src.nets:
        names = tuple(sorted({p.node for p in net.pins if p.node in keep}))
        if len(names) < 2:
            continue
        merged[names] = merged.get(names, 0.0) + net.weight
    for i, (names, weight) in enumerate(sorted(merged.items())):
        out.add_net(
            Net(name=f"mi{i}", pins=[Pin(n) for n in names], weight=weight)
        )
    return out


def connectivity_matrix(
    netlist: Netlist, groups: list[list[str]], degree_cap: int = 64
) -> np.ndarray:
    """Total net weight between each pair of node groups.

    ``groups`` is a partition (or any family) of node-name lists; entry
    [i, j] sums the weights of nets touching both group i and group j.
    Nets above *degree_cap* are skipped (no locality signal, quadratic
    cost), matching the clustering engine's convention.
    """
    index_of: dict[str, int] = {}
    for gi, names in enumerate(groups):
        for name in names:
            index_of[name] = gi
    k = len(groups)
    w = np.zeros((k, k))
    for net in netlist.nets:
        if net.degree > degree_cap:
            continue
        touched = sorted({index_of[p.node] for p in net.pins if p.node in index_of})
        for a in range(len(touched)):
            for b in range(a + 1, len(touched)):
                w[touched[a], touched[b]] += net.weight
                w[touched[b], touched[a]] += net.weight
    return w
