"""Netlist substrate: data model, HPWL, Bookshelf I/O, synthetic benchmarks.

The paper evaluates on the ICCAD04 mixed-size Bookshelf benchmarks and on
proprietary industrial designs with hierarchy and preplaced macros.  This
package provides:

- :mod:`repro.netlist.model` — the in-memory design representation
  (:class:`Design`, :class:`Netlist`, macros/cells/pads/nets/pins).
- :mod:`repro.netlist.hpwl` — vectorized half-perimeter wirelength.
- :mod:`repro.netlist.bookshelf` — a Bookshelf (``.aux/.nodes/.nets/.pl/.scl``)
  parser and writer so genuine ICCAD04 data can be dropped in.
- :mod:`repro.netlist.generator` / :mod:`repro.netlist.suites` — synthetic
  hierarchical mixed-size benchmark generators standing in for the
  unavailable proprietary/industrial data (see DESIGN.md §2).
"""

from repro.netlist.model import (
    Cell,
    Design,
    IOPad,
    Macro,
    Net,
    Netlist,
    Node,
    NodeKind,
    Pin,
    PlacementRegion,
)
from repro.netlist.hpwl import FlatNetlist, hpwl, net_hpwl

__all__ = [
    "Cell",
    "Design",
    "FlatNetlist",
    "IOPad",
    "Macro",
    "Net",
    "Netlist",
    "Node",
    "NodeKind",
    "Pin",
    "PlacementRegion",
    "hpwl",
    "net_hpwl",
]
