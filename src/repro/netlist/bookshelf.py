"""Bookshelf placement-format I/O.

The ICCAD04 mixed-size benchmarks (ibm01–ibm18) the paper evaluates on are
distributed in the UCLA Bookshelf format.  This module reads and writes the
five standard files:

- ``.aux``   — manifest naming the other files
- ``.nodes`` — node names, sizes, and the ``terminal`` attribute
- ``.nets``  — nets with pin offsets (from node centers)
- ``.pl``    — placement (positions, orientation, ``/FIXED`` attribute)
- ``.scl``   — core rows (used here to derive the placement region and the
  row height that separates standard cells from macros)

Classification rules (matching common mixed-size practice):

- A node flagged ``terminal`` in ``.nodes`` is an :class:`IOPad` if it has
  (near-)zero area or lies outside the core region; otherwise it is a
  *preplaced macro*.
- A movable node taller than the row height is a :class:`Macro`; the rest
  are standard :class:`Cell` instances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.netlist.model import (
    Cell,
    Design,
    IOPad,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)
from repro.runtime.errors import PlacementError


class BookshelfError(PlacementError, ValueError):
    """Raised on malformed Bookshelf input.

    Carries the offending ``file``, 1-based ``line`` number, and the raw
    line text in ``details`` so a malformed benchmark bundle is diagnosable
    from the message alone.  Subclasses ``ValueError`` for backward
    compatibility and :class:`~repro.runtime.errors.PlacementError` so the
    CLI maps it to a structured exit code.
    """


def _content_lines(path: str) -> list[tuple[int, str]]:
    """(line_number, text) for the non-empty, non-comment lines of a file."""
    lines: list[tuple[int, str]] = []
    try:
        f = open(path)
    except OSError as exc:
        raise BookshelfError(
            f"cannot open Bookshelf file: {exc}", file=path
        ) from exc
    with f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("UCLA"):
                continue
            lines.append((lineno, line))
    return lines


def _parse_float(
    text: str, path: str, lineno: int, line: str, what: str
) -> float:
    try:
        return float(text)
    except ValueError:
        raise BookshelfError(
            f"malformed {what} {text!r}",
            file=path,
            line=lineno,
            text=line,
        ) from None


@dataclass
class _RawNode:
    name: str
    width: float
    height: float
    terminal: bool


def _parse_nodes(path: str) -> list[_RawNode]:
    nodes: list[_RawNode] = []
    for lineno, line in _content_lines(path):
        if line.startswith("NumNodes") or line.startswith("NumTerminals"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise BookshelfError(
                "bad .nodes line: expected 'name width height [terminal]'",
                file=path, line=lineno, text=line,
            )
        terminal = len(parts) > 3 and parts[3].lower().startswith("terminal")
        w = _parse_float(parts[1], path, lineno, line, "node width")
        h = _parse_float(parts[2], path, lineno, line, "node height")
        nodes.append(_RawNode(parts[0], w, h, terminal))
    return nodes


def _parse_nets(path: str) -> list[Net]:
    nets: list[Net] = []
    current: Net | None = None
    remaining = 0
    net_counter = 0
    for lineno, line in _content_lines(path):
        if line.startswith("NumNets") or line.startswith("NumPins"):
            continue
        if line.startswith("NetDegree"):
            head, _, tail = line.partition(":")
            del head
            fields = tail.split()
            if not fields:
                raise BookshelfError(
                    "bad NetDegree line: expected 'NetDegree : n [name]'",
                    file=path, line=lineno, text=line,
                )
            try:
                degree = int(fields[0])
            except ValueError:
                raise BookshelfError(
                    f"malformed net degree {fields[0]!r}",
                    file=path, line=lineno, text=line,
                ) from None
            name = fields[1] if len(fields) > 1 else f"n{net_counter}"
            net_counter += 1
            current = Net(name=name)
            nets.append(current)
            remaining = degree
            continue
        if current is None or remaining <= 0:
            raise BookshelfError(
                "pin line outside a net (check the preceding NetDegree count)",
                file=path, line=lineno, text=line,
            )
        parts = line.split()
        node_name = parts[0]
        dx = dy = 0.0
        if ":" in parts:
            colon = parts.index(":")
            if len(parts) > colon + 2:
                dx = _parse_float(parts[colon + 1], path, lineno, line, "pin offset")
                dy = _parse_float(parts[colon + 2], path, lineno, line, "pin offset")
        current.pins.append(Pin(node=node_name, dx=dx, dy=dy))
        remaining -= 1
    return nets


def _parse_pl(path: str) -> dict[str, tuple[float, float, bool]]:
    """name -> (x, y, fixed)."""
    placements: dict[str, tuple[float, float, bool]] = {}
    for lineno, line in _content_lines(path):
        parts = line.split()
        if len(parts) < 3:
            continue
        name = parts[0]
        x = _parse_float(parts[1], path, lineno, line, "placement x")
        y = _parse_float(parts[2], path, lineno, line, "placement y")
        fixed = "/FIXED" in line.upper()
        placements[name] = (x, y, fixed)
    return placements


@dataclass
class _Rows:
    region: PlacementRegion
    row_height: float


def _parse_scl(path: str) -> _Rows:
    y_min = x_min = float("inf")
    y_max = x_max = float("-inf")
    row_height = 0.0
    coordinate = height = None
    subrow_origin = num_sites = site_width = None
    in_row = False
    for lineno, line in _content_lines(path):
        token = line.split()[0].lower()
        if token == "numrows":
            continue
        if token == "corerow":
            in_row = True
            coordinate = height = subrow_origin = num_sites = None
            site_width = 1.0
            continue
        if not in_row:
            continue
        lowered = line.lower().replace(":", " : ")
        fields = lowered.split()
        if fields[0] == "coordinate":
            coordinate = _parse_float(fields[-1], path, lineno, line, "row coordinate")
        elif fields[0] == "height":
            height = _parse_float(fields[-1], path, lineno, line, "row height")
        elif fields[0] == "sitewidth":
            site_width = _parse_float(fields[-1], path, lineno, line, "site width")
        elif fields[0] == "subroworigin":
            # "SubrowOrigin : x NumSites : n" on one line
            for i, f in enumerate(fields):
                if f == "subroworigin":
                    subrow_origin = _parse_float(
                        fields[i + 2], path, lineno, line, "subrow origin"
                    )
                if f == "numsites":
                    num_sites = _parse_float(
                        fields[i + 2], path, lineno, line, "site count"
                    )
        elif fields[0] == "end":
            if None in (coordinate, height, subrow_origin, num_sites):
                missing = [
                    key
                    for key, val in (
                        ("Coordinate", coordinate),
                        ("Height", height),
                        ("SubrowOrigin", subrow_origin),
                        ("NumSites", num_sites),
                    )
                    if val is None
                ]
                raise BookshelfError(
                    "incomplete CoreRow block in .scl",
                    file=path, line=lineno, missing=missing,
                )
            y_min = min(y_min, coordinate)
            y_max = max(y_max, coordinate + height)
            x_min = min(x_min, subrow_origin)
            x_max = max(x_max, subrow_origin + num_sites * (site_width or 1.0))
            row_height = max(row_height, height)
            in_row = False
    if y_min == float("inf"):
        raise BookshelfError("no CoreRow blocks found in .scl", file=path)
    region = PlacementRegion(x=x_min, y=y_min, width=x_max - x_min, height=y_max - y_min)
    return _Rows(region=region, row_height=row_height)


def read_aux(aux_path: str) -> Design:
    """Read a full Bookshelf design via its ``.aux`` manifest."""
    base_dir = os.path.dirname(os.path.abspath(aux_path))
    try:
        with open(aux_path) as f:
            content = f.read()
    except OSError as exc:
        raise BookshelfError(
            f"cannot open .aux manifest: {exc}", file=aux_path
        ) from exc
    _, _, tail = content.partition(":")
    file_names = tail.split()
    if not file_names:
        raise BookshelfError(f"empty .aux manifest: {aux_path!r}", file=aux_path)
    by_ext = {os.path.splitext(n)[1]: os.path.join(base_dir, n) for n in file_names}
    for ext in (".nodes", ".nets", ".pl", ".scl"):
        if ext not in by_ext:
            raise BookshelfError(
                f".aux manifest missing a {ext} file",
                file=aux_path, listed=file_names,
            )
    return read_design(
        nodes=by_ext[".nodes"],
        nets=by_ext[".nets"],
        pl=by_ext[".pl"],
        scl=by_ext[".scl"],
        name=os.path.splitext(os.path.basename(aux_path))[0],
    )


def read_design(nodes: str, nets: str, pl: str, scl: str, name: str = "design") -> Design:
    """Assemble a :class:`Design` from explicit Bookshelf file paths."""
    raw_nodes = _parse_nodes(nodes)
    rows = _parse_scl(scl)
    placements = _parse_pl(pl)

    netlist = Netlist(name=name)
    for rn in raw_nodes:
        x, y, fixed_in_pl = placements.get(rn.name, (0.0, 0.0, False))
        if rn.terminal:
            tiny = rn.width * rn.height <= max(rows.row_height, 1.0) ** 2
            outside = not (
                rows.region.x <= x <= rows.region.x_max
                and rows.region.y <= y <= rows.region.y_max
            )
            if tiny or outside:
                node = IOPad(rn.name, rn.width, rn.height, x=x, y=y)
            else:
                node = Macro(rn.name, rn.width, rn.height, x=x, y=y, fixed=True)
        elif rn.height > rows.row_height:
            node = Macro(rn.name, rn.width, rn.height, x=x, y=y, fixed=fixed_in_pl)
        else:
            node = Cell(rn.name, rn.width, rn.height, x=x, y=y, fixed=fixed_in_pl)
        netlist.add_node(node)

    for net in _parse_nets(nets):
        netlist.add_net(net)

    return Design(netlist=netlist, region=rows.region)


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

def write_design(design: Design, directory: str, row_height: float | None = None) -> str:
    """Write *design* as a Bookshelf bundle into *directory*.

    Returns the path of the generated ``.aux`` file.  ``row_height`` defaults
    to the smallest cell height (or 1.0 for cell-less designs).
    """
    os.makedirs(directory, exist_ok=True)
    nl = design.netlist
    base = nl.name
    if row_height is None:
        cell_heights = [c.height for c in nl.cells]
        row_height = min(cell_heights) if cell_heights else 1.0

    nodes_path = os.path.join(directory, f"{base}.nodes")
    terminals = [n for n in nl if n.fixed]
    with open(nodes_path, "w") as f:
        f.write("UCLA nodes 1.0\n\n")
        f.write(f"NumNodes : {len(nl)}\n")
        f.write(f"NumTerminals : {len(terminals)}\n")
        for node in nl:
            attr = " terminal" if node.fixed else ""
            f.write(f"  {node.name} {node.width:g} {node.height:g}{attr}\n")

    nets_path = os.path.join(directory, f"{base}.nets")
    n_pins = sum(net.degree for net in nl.nets)
    with open(nets_path, "w") as f:
        f.write("UCLA nets 1.0\n\n")
        f.write(f"NumNets : {len(nl.nets)}\n")
        f.write(f"NumPins : {n_pins}\n")
        for net in nl.nets:
            f.write(f"NetDegree : {net.degree}  {net.name}\n")
            for pin in net.pins:
                f.write(f"  {pin.node} B : {pin.dx:g} {pin.dy:g}\n")

    pl_path = os.path.join(directory, f"{base}.pl")
    with open(pl_path, "w") as f:
        f.write("UCLA pl 1.0\n\n")
        for node in nl:
            attr = " /FIXED" if node.fixed else ""
            f.write(f"{node.name} {node.x:g} {node.y:g} : N{attr}\n")

    scl_path = os.path.join(directory, f"{base}.scl")
    region = design.region
    n_rows = max(1, int(region.height // row_height))
    with open(scl_path, "w") as f:
        f.write("UCLA scl 1.0\n\n")
        f.write(f"NumRows : {n_rows}\n")
        for r in range(n_rows):
            f.write("CoreRow Horizontal\n")
            f.write(f"  Coordinate : {region.y + r * row_height:g}\n")
            f.write(f"  Height : {row_height:g}\n")
            f.write("  Sitewidth : 1\n")
            f.write("  Sitespacing : 1\n")
            f.write("  Siteorient : 1\n")
            f.write("  Sitesymmetry : 1\n")
            f.write(
                f"  SubrowOrigin : {region.x:g} NumSites : {int(region.width)}\n"
            )
            f.write("End\n")

    aux_path = os.path.join(directory, f"{base}.aux")
    with open(aux_path, "w") as f:
        f.write(
            f"RowBasedPlacement : {base}.nodes {base}.nets {base}.pl {base}.scl\n"
        )
    return aux_path
