"""Design validation — structural checks before a design enters the flow.

Parsing external Bookshelf data (or building netlists programmatically)
can produce silently-broken inputs: zero-area movable nodes, nets with
duplicate pins, macros that cannot fit the placement region, fixed nodes
far outside the die.  :func:`validate_design` collects every such issue
with a severity, so callers can fail fast (`raise_on_error=True`) or log
and continue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netlist.model import Design, NodeKind


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


class ValidationError(ValueError):
    """Raised by :func:`validate_design` when errors exist and
    ``raise_on_error`` is set."""

    def __init__(self, issues: list[Issue]) -> None:
        self.issues = issues
        errors = [str(i) for i in issues if i.severity is Severity.ERROR]
        super().__init__("; ".join(errors))


def validate_design(design: Design, raise_on_error: bool = False) -> list[Issue]:
    """Run all structural checks; returns the issue list (possibly empty)."""
    issues: list[Issue] = []
    nl = design.netlist
    region = design.region

    if region.width <= 0 or region.height <= 0:
        issues.append(
            Issue(Severity.ERROR, "region-degenerate",
                  f"placement region {region.width}x{region.height} is empty")
        )

    total_movable_area = 0.0
    for node in nl:
        if node.width < 0 or node.height < 0:
            issues.append(
                Issue(Severity.ERROR, "negative-size",
                      f"node {node.name!r} has negative dimensions")
            )
        if (
            node.kind is not NodeKind.PAD
            and not node.fixed
            and node.area == 0.0
        ):
            issues.append(
                Issue(Severity.WARNING, "zero-area",
                      f"movable node {node.name!r} has zero area")
            )
        if node.kind is NodeKind.MACRO and not node.fixed:
            if node.width > region.width or node.height > region.height:
                issues.append(
                    Issue(Severity.ERROR, "macro-oversized",
                          f"macro {node.name!r} ({node.width}x{node.height}) "
                          f"cannot fit the region")
                )
        if node.fixed and node.kind is NodeKind.MACRO:
            if not region.contains(node, tol=1e-6):
                issues.append(
                    Issue(Severity.ERROR, "preplaced-outside",
                          f"preplaced macro {node.name!r} lies outside the region")
                )
        if not node.fixed:
            total_movable_area += node.area

    # Fixed blockage area reduces capacity.
    blocked = sum(
        m.area for m in nl.preplaced_macros if region.contains(m, tol=1e-6)
    )
    capacity = region.area - blocked
    if total_movable_area > capacity > 0:
        issues.append(
            Issue(Severity.ERROR, "over-capacity",
                  f"movable area {total_movable_area:.1f} exceeds free region "
                  f"capacity {capacity:.1f}")
        )
    elif capacity > 0 and total_movable_area > 0.9 * capacity:
        issues.append(
            Issue(Severity.WARNING, "high-utilization",
                  f"utilization {total_movable_area / capacity:.0%} > 90%: "
                  f"legalization may fail")
        )

    seen_names: set[str] = set()
    for net in nl.nets:
        if net.name in seen_names:
            issues.append(
                Issue(Severity.WARNING, "duplicate-net-name",
                      f"net name {net.name!r} appears more than once")
            )
        seen_names.add(net.name)
        if net.degree == 0:
            issues.append(
                Issue(Severity.WARNING, "empty-net", f"net {net.name!r} has no pins")
            )
        pin_nodes = [p.node for p in net.pins]
        if len(set(pin_nodes)) < len(pin_nodes):
            issues.append(
                Issue(Severity.WARNING, "duplicate-pin",
                      f"net {net.name!r} pins the same node more than once")
            )
        if net.weight < 0:
            issues.append(
                Issue(Severity.ERROR, "negative-weight",
                      f"net {net.name!r} has negative weight {net.weight}")
            )

    if raise_on_error and any(i.severity is Severity.ERROR for i in issues):
        raise ValidationError(issues)
    return issues
