"""Benchmark suite definitions matching the paper's evaluation tables.

Two suites are provided, both synthesized by :mod:`repro.netlist.generator`
with the per-circuit statistics the paper reports (Table II for the
industrial designs, Table III for ICCAD04), scaled by a ``scale`` knob so
single-core CPU runs finish in seconds instead of hours:

- :func:`iccad04_suite` — ibm01…ibm18-alike circuits (no ibm05: it has no
  macros, exactly as the paper notes).  No hierarchy, no preplaced macros,
  matching the real ICCAD04 data.
- :func:`industrial_suite` — Cir1…Cir6-alike circuits with hierarchy,
  preplaced macros and boundary pads.

``scale`` multiplies cell/net/pad counts; ``macro_scale`` multiplies macro
counts (macros are the RL/MCTS action space and dominate runtime, so they
get their own knob).  ``scale=1.0, macro_scale=1.0`` reconstructs full-size
instances.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.netlist.generator import GeneratorSpec, generate_design
from repro.netlist.model import Design

#: Table III rows 1–3: (movable macros, standard cells, nets).  ibm05 is
#: intentionally absent (no macros).
ICCAD04_STATS: dict[str, tuple[int, int, int]] = {
    "ibm01": (246, 12_000, 14_000),
    "ibm02": (280, 19_000, 19_000),
    "ibm03": (290, 22_000, 27_000),
    "ibm04": (608, 26_000, 31_000),
    "ibm06": (178, 32_000, 34_000),
    "ibm07": (507, 45_000, 48_000),
    "ibm08": (309, 51_000, 50_000),
    "ibm09": (253, 53_000, 60_000),
    "ibm10": (786, 68_000, 75_000),
    "ibm11": (373, 70_000, 81_000),
    "ibm12": (651, 70_000, 77_000),
    "ibm13": (424, 83_000, 99_000),
    "ibm14": (614, 146_000, 152_000),
    "ibm15": (393, 161_000, 186_000),
    "ibm16": (458, 183_000, 190_000),
    "ibm17": (760, 184_000, 189_000),
    "ibm18": (285, 210_000, 201_000),
}

#: Table II columns 2–6: (movable macros, preplaced macros, pads, cells, nets).
INDUSTRIAL_STATS: dict[str, tuple[int, int, int, int, int]] = {
    "Cir1": (30, 13, 130, 157_000, 181_000),
    "Cir2": (71, 47, 365, 1_098_000, 1_126_000),
    "Cir3": (55, 15, 219, 232_000, 235_000),
    "Cir4": (38, 15, 169, 321_000, 327_000),
    "Cir5": (32, 12, 351, 347_000, 352_000),
    "Cir6": (66, 3, 481, 209_000, 217_000),
}


@dataclass(frozen=True)
class SuiteEntry:
    """A named circuit plus the statistics it was scaled from."""

    name: str
    design: Design
    paper_macros: int
    paper_cells: int
    paper_nets: int


def _scaled(count: int, scale: float, minimum: int) -> int:
    return max(minimum, round(count * scale))


def _stable_seed(name: str) -> int:
    """Process-independent seed for circuit *name* (str hash is randomized)."""
    return zlib.crc32(name.encode())


def make_iccad04_circuit(
    name: str,
    scale: float = 0.01,
    macro_scale: float = 0.08,
    seed_offset: int = 0,
) -> SuiteEntry:
    """One ibmXX-alike circuit (see :data:`ICCAD04_STATS`)."""
    if name not in ICCAD04_STATS:
        raise KeyError(f"unknown ICCAD04 circuit {name!r}; ibm05 has no macros")
    macros, cells, nets = ICCAD04_STATS[name]
    spec = GeneratorSpec(
        name=name,
        n_movable_macros=_scaled(macros, macro_scale, 6),
        n_preplaced_macros=0,
        n_pads=_scaled(cells, scale * 0.01, 8),
        n_cells=_scaled(cells, scale, 50),
        n_nets=_scaled(nets, scale, 60),
        utilization=0.5,
        macro_area_fraction=0.45,
        hierarchy_depth=2,
        hierarchy_branching=3,
        expose_hierarchy=False,
        seed=_stable_seed(name) + seed_offset,
    )
    return SuiteEntry(
        name=name,
        design=generate_design(spec),
        paper_macros=macros,
        paper_cells=cells,
        paper_nets=nets,
    )


def iccad04_suite(
    scale: float = 0.01,
    macro_scale: float = 0.08,
    circuits: list[str] | None = None,
) -> list[SuiteEntry]:
    """The ibm01…ibm18-alike suite (Table III), optionally restricted."""
    names = circuits if circuits is not None else list(ICCAD04_STATS)
    return [make_iccad04_circuit(n, scale=scale, macro_scale=macro_scale) for n in names]


def make_industrial_circuit(
    name: str,
    scale: float = 0.002,
    macro_scale: float = 0.5,
    seed_offset: int = 0,
) -> SuiteEntry:
    """One CirX-alike hierarchical circuit (see :data:`INDUSTRIAL_STATS`)."""
    if name not in INDUSTRIAL_STATS:
        raise KeyError(f"unknown industrial circuit {name!r}")
    mov, pre, pads, cells, nets = INDUSTRIAL_STATS[name]
    spec = GeneratorSpec(
        name=name,
        n_movable_macros=_scaled(mov, macro_scale, 6),
        n_preplaced_macros=_scaled(pre, macro_scale, 1),
        n_pads=_scaled(pads, scale * 50, 8),
        n_cells=_scaled(cells, scale, 50),
        n_nets=_scaled(nets, scale, 60),
        utilization=0.55,
        macro_area_fraction=0.4,
        hierarchy_depth=3,
        hierarchy_branching=3,
        expose_hierarchy=True,
        seed=_stable_seed(name) + seed_offset,
    )
    return SuiteEntry(
        name=name,
        design=generate_design(spec),
        paper_macros=mov,
        paper_cells=cells,
        paper_nets=nets,
    )


def industrial_suite(
    scale: float = 0.002,
    macro_scale: float = 0.5,
    circuits: list[str] | None = None,
) -> list[SuiteEntry]:
    """The Cir1…Cir6-alike suite (Table II), optionally restricted."""
    names = circuits if circuits is not None else list(INDUSTRIAL_STATS)
    return [
        make_industrial_circuit(n, scale=scale, macro_scale=macro_scale) for n in names
    ]
