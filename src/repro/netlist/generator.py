"""Synthetic mixed-size benchmark generation.

The paper evaluates on (a) the ICCAD04 mixed-size Bookshelf suite and (b)
proprietary industrial designs with logical hierarchy and preplaced macros.
Neither dataset ships with this repository, so :func:`generate_design`
synthesizes circuits with matching *statistics*:

- a logical hierarchy tree (branching/depth configurable) whose leaf modules
  own macros and cells — intra-module nets dominate, giving the locality the
  grouping score Γ exploits;
- a heavy-tailed net-degree distribution (2-pin dominated, geometric tail),
  the shape real netlists exhibit;
- macro areas drawn from a lognormal, cells of unit row height;
- a die sized from total area and a target utilization;
- I/O pads on the die boundary, preplaced macros (optionally) pinned in the
  corners/edges as industrial flows do.

The generator is fully deterministic given a seed, so benchmark tables are
reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.model import (
    Cell,
    Design,
    IOPad,
    Macro,
    Net,
    Netlist,
    Pin,
    PlacementRegion,
)
from repro.utils.rng import ensure_rng


@dataclass
class GeneratorSpec:
    """Parameters of one synthetic circuit.

    The defaults produce a small smoke-test design; the suite constructors in
    :mod:`repro.netlist.suites` fill these in from the paper's tables.
    """

    name: str = "synthetic"
    n_movable_macros: int = 12
    n_preplaced_macros: int = 0
    n_pads: int = 16
    n_cells: int = 400
    n_nets: int = 500
    utilization: float = 0.55
    macro_area_fraction: float = 0.35
    hierarchy_depth: int = 3
    hierarchy_branching: int = 3
    intra_module_net_prob: float = 0.8
    mean_net_degree: float = 3.4
    max_net_degree: int = 24
    macro_aspect_range: tuple[float, float] = (0.5, 2.0)
    cell_width_range: tuple[int, int] = (1, 4)
    expose_hierarchy: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_movable_macros < 1:
            raise ValueError("need at least one movable macro")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if not 0.0 < self.macro_area_fraction < 1.0:
            raise ValueError("macro_area_fraction must be in (0, 1)")
        if self.mean_net_degree < 2.0:
            raise ValueError("mean_net_degree must be >= 2")


@dataclass
class _Module:
    """One leaf of the hierarchy tree with the node names it owns."""

    path: str
    members: list[str] = field(default_factory=list)


def _build_hierarchy(spec: GeneratorSpec, rng: np.random.Generator) -> list[_Module]:
    """Enumerate leaf-module paths of a uniform tree."""
    paths = [""]
    for _ in range(spec.hierarchy_depth):
        next_paths = []
        for p in paths:
            for b in range(spec.hierarchy_branching):
                label = f"m{b}"
                next_paths.append(f"{p}/{label}" if p else label)
        paths = next_paths
    # Real designs are unbalanced: drop a random third of the leaves.
    keep = max(1, int(len(paths) * 2 / 3))
    idx = rng.permutation(len(paths))[:keep]
    return [_Module(path=f"{spec.name}/{paths[i]}") for i in sorted(idx)]


def _macro_dims(
    spec: GeneratorSpec, area: float, rng: np.random.Generator
) -> tuple[float, float]:
    lo, hi = spec.macro_aspect_range
    aspect = float(rng.uniform(lo, hi))
    h = math.sqrt(area / aspect)
    w = area / h
    # Macros are multi-row objects by definition (this is also what lets
    # the Bookshelf reader tell them from cells): enforce height >= 2 rows
    # while preserving area.
    min_height = 2.0  # cell row height is 1.0
    if h < min_height:
        h = min_height
        w = area / h
    return w, h


def _sample_net_degree(spec: GeneratorSpec, rng: np.random.Generator) -> int:
    """Geometric degree >= 2 with mean ``mean_net_degree``, capped."""
    p = 1.0 / (spec.mean_net_degree - 1.0)
    d = 2 + int(rng.geometric(min(1.0, p))) - 1
    return min(d, spec.max_net_degree)


def generate_design(spec: GeneratorSpec) -> Design:
    """Build a deterministic synthetic :class:`Design` from *spec*."""
    rng = ensure_rng(spec.seed)
    netlist = Netlist(name=spec.name)
    modules = _build_hierarchy(spec, rng)

    # -- size budget --------------------------------------------------------
    cell_widths = rng.integers(
        spec.cell_width_range[0], spec.cell_width_range[1] + 1, size=spec.n_cells
    )
    cell_area = float(cell_widths.sum())  # unit row height
    total_macros = spec.n_movable_macros + spec.n_preplaced_macros
    frac = spec.macro_area_fraction
    macro_area_total = cell_area * frac / (1.0 - frac) if spec.n_cells else 100.0 * total_macros
    # Lognormal split of macro area across macros (few big, many small);
    # floor at 4 area units (2 rows × 2 sites) — anything smaller is a
    # cell, not a macro, and would confuse Bookshelf's implicit
    # terminal/macro/cell classification.
    raw = rng.lognormal(mean=0.0, sigma=0.8, size=total_macros)
    macro_areas = np.maximum(raw / raw.sum() * macro_area_total, 4.0)
    macro_area_total = float(macro_areas.sum())

    placeable_area = cell_area + macro_area_total
    die_area = placeable_area / spec.utilization
    side = math.sqrt(die_area)
    region = PlacementRegion(x=0.0, y=0.0, width=side, height=side)

    # -- macros ---------------------------------------------------------------
    macro_module = rng.integers(0, len(modules), size=total_macros)
    preplaced_rects: list[tuple[float, float, float, float]] = []

    def edge_position(w: float, h: float) -> tuple[float, float]:
        edge = int(rng.integers(0, 4))
        t = float(rng.uniform(0.05, 0.95))
        if edge == 0:
            return t * (side - w), 0.0
        if edge == 1:
            return t * (side - w), side - h
        if edge == 2:
            return 0.0, t * (side - h)
        return side - w, t * (side - h)

    for i in range(total_macros):
        w, h = _macro_dims(spec, float(macro_areas[i]), rng)
        w = min(w, side * 0.45)
        h = min(h, side * 0.45)
        preplaced = i >= spec.n_movable_macros
        mod = modules[int(macro_module[i])]
        name = f"o_mk{i}" if not preplaced else f"o_mp{i}"
        macro = Macro(
            name=name,
            width=w,
            height=h,
            fixed=preplaced,
            hierarchy=mod.path if spec.expose_hierarchy else "",
        )
        if preplaced:
            # Industrial flows pin pre-placed macros along the die edges;
            # retry until the fixed blocks do not overlap one another (they
            # could never be repaired downstream).
            for _attempt in range(64):
                x, y = edge_position(w, h)
                if all(
                    not (x < rx + rw and rx < x + w and y < ry + rh and ry < y + h)
                    for rx, ry, rw, rh in preplaced_rects
                ):
                    break
            macro.x, macro.y = x, y
            preplaced_rects.append((x, y, w, h))
        else:
            macro.x = float(rng.uniform(0.0, side - w))
            macro.y = float(rng.uniform(0.0, side - h))
        netlist.add_node(macro)
        mod.members.append(name)

    # -- cells ----------------------------------------------------------------
    cell_module = rng.integers(0, len(modules), size=spec.n_cells)
    for i in range(spec.n_cells):
        mod = modules[int(cell_module[i])]
        cell = Cell(
            name=f"o_c{i}",
            width=float(cell_widths[i]),
            height=1.0,
            x=float(rng.uniform(0.0, side - cell_widths[i])),
            y=float(rng.uniform(0.0, side - 1.0)),
            hierarchy=mod.path if spec.expose_hierarchy else "",
        )
        netlist.add_node(cell)
        mod.members.append(cell.name)

    # -- pads -------------------------------------------------------------------
    pad_names: list[str] = []
    for i in range(spec.n_pads):
        t = i / max(1, spec.n_pads)
        edge = i % 4
        u = (t * 4.0) % 1.0
        if edge == 0:
            x, y = u * side, -1.0
        elif edge == 1:
            x, y = side, u * side
        elif edge == 2:
            x, y = (1 - u) * side, side
        else:
            x, y = -1.0, (1 - u) * side
        pad = IOPad(name=f"o_p{i}", width=1.0, height=1.0, x=x, y=y)
        netlist.add_node(pad)
        pad_names.append(pad.name)

    # -- nets ---------------------------------------------------------------------
    all_movable = [n.name for n in netlist if not n.fixed] + [
        m.name for m in netlist.preplaced_macros
    ]
    module_members = [m.members for m in modules if m.members]
    for i in range(spec.n_nets):
        degree = _sample_net_degree(spec, rng)
        pins: list[str] = []
        if module_members and rng.random() < spec.intra_module_net_prob:
            members = module_members[int(rng.integers(0, len(module_members)))]
            pool = members if len(members) >= 2 else all_movable
        else:
            pool = all_movable
        degree = min(degree, len(pool))
        if degree < 2:
            pool = all_movable
            degree = min(max(2, degree), len(pool))
        chosen = rng.choice(len(pool), size=degree, replace=False)
        pins = [pool[int(c)] for c in chosen]
        # A small fraction of nets also reach an I/O pad.
        if pad_names and rng.random() < 0.08:
            pins.append(pad_names[int(rng.integers(0, len(pad_names)))])
        net = Net(name=f"net{i}")
        for node_name in pins:
            node = netlist[node_name]
            dx = float(rng.uniform(-node.width / 2, node.width / 2))
            dy = float(rng.uniform(-node.height / 2, node.height / 2))
            net.pins.append(Pin(node=node_name, dx=dx, dy=dy))
        netlist.add_net(net)

    return Design(netlist=netlist, region=region)
