"""In-memory design representation.

A :class:`Design` couples a :class:`Netlist` (nodes + nets) with a
:class:`PlacementRegion`.  Nodes come in three kinds:

- :class:`Macro` — large movable (or preplaced/fixed) blocks.  Macros carry a
  ``hierarchy`` path (e.g. ``"top/cpu/dcache"``); the paper's grouping score
  Γ (Eq. 1) rewards merging macros whose hierarchy prefixes overlap.
- :class:`Cell` — standard cells.
- :class:`IOPad` — fixed terminals on the die boundary.

Coordinates follow the Bookshelf convention: ``(x, y)`` is the node's
lower-left corner; pin offsets are measured from the node *center*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class NodeKind(enum.Enum):
    """Discriminates the three node species in a mixed-size design."""

    MACRO = "macro"
    CELL = "cell"
    PAD = "pad"


@dataclass
class Node:
    """A rectangular placeable object.

    Attributes:
        name: Unique identifier within the netlist.
        width/height: Dimensions in the same unit as the placement region.
        x/y: Lower-left corner of the current placement.
        fixed: Fixed nodes (pads, preplaced macros) are never moved by any
            stage of the flow.
        hierarchy: Slash-separated logical hierarchy path; empty string when
            the design carries no hierarchy information (e.g. ICCAD04).
    """

    name: str
    width: float
    height: float
    x: float = 0.0
    y: float = 0.0
    fixed: bool = False
    hierarchy: str = ""

    @property
    def kind(self) -> NodeKind:
        raise NotImplementedError

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def cx(self) -> float:
        """Center x coordinate."""
        return self.x + self.width / 2.0

    @property
    def cy(self) -> float:
        """Center y coordinate."""
        return self.y + self.height / 2.0

    def move_center_to(self, cx: float, cy: float) -> None:
        """Place this node so that its center lands on ``(cx, cy)``."""
        self.x = cx - self.width / 2.0
        self.y = cy - self.height / 2.0

    def overlaps(self, other: "Node") -> bool:
        """True when the two rectangles share positive interior area."""
        return (
            self.x < other.x + other.width
            and other.x < self.x + self.width
            and self.y < other.y + other.height
            and other.y < self.y + self.height
        )

    def overlap_area(self, other: "Node") -> float:
        """Interior intersection area of the two rectangles (0 if disjoint)."""
        w = min(self.x + self.width, other.x + other.width) - max(self.x, other.x)
        h = min(self.y + self.height, other.y + other.height) - max(self.y, other.y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h


@dataclass
class Macro(Node):
    """A macro block.  ``fixed=True`` marks a preplaced macro."""

    @property
    def kind(self) -> NodeKind:
        return NodeKind.MACRO


@dataclass
class Cell(Node):
    """A standard cell (always movable in this flow)."""

    @property
    def kind(self) -> NodeKind:
        return NodeKind.CELL


@dataclass
class IOPad(Node):
    """A fixed I/O terminal; forced ``fixed=True`` on construction."""

    def __post_init__(self) -> None:
        self.fixed = True

    @property
    def kind(self) -> NodeKind:
        return NodeKind.PAD


@dataclass(frozen=True)
class Pin:
    """One connection point of a net.

    ``dx``/``dy`` are offsets from the owning node's *center* (Bookshelf
    convention), so the pin's absolute position is
    ``(node.cx + dx, node.cy + dy)``.
    """

    node: str
    dx: float = 0.0
    dy: float = 0.0


@dataclass
class Net:
    """A multi-terminal net with an optional weight (λ_n in Eq. 3)."""

    name: str
    pins: list[Pin] = field(default_factory=list)
    weight: float = 1.0

    @property
    def degree(self) -> int:
        return len(self.pins)


class Netlist:
    """A collection of named nodes plus the nets connecting them.

    Node insertion order is preserved, and every node receives a stable
    integer index (``index_of``) used by the flat, vectorized views
    (:class:`repro.netlist.hpwl.FlatNetlist`).
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._order: list[str] = []
        self._index: dict[str, int] = {}
        self.nets: list[Net] = []

    # -- node management ---------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._index[node.name] = len(self._order)
        self._order.append(node.name)
        return node

    def add_net(self, net: Net) -> Net:
        for pin in net.pins:
            if pin.node not in self._nodes:
                raise KeyError(f"net {net.name!r} references unknown node {pin.node!r}")
        self.nets.append(net)
        return net

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Node:
        return self._nodes[name]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        for name in self._order:
            yield self._nodes[name]

    def index_of(self, name: str) -> int:
        """Stable integer index of node *name* (insertion order)."""
        return self._index[name]

    @property
    def node_names(self) -> list[str]:
        return list(self._order)

    # -- filtered views ----------------------------------------------------
    def nodes(self, kind: NodeKind | None = None) -> list[Node]:
        """All nodes, optionally restricted to one :class:`NodeKind`."""
        if kind is None:
            return [self._nodes[n] for n in self._order]
        return [self._nodes[n] for n in self._order if self._nodes[n].kind is kind]

    @property
    def macros(self) -> list[Macro]:
        return self.nodes(NodeKind.MACRO)  # type: ignore[return-value]

    @property
    def movable_macros(self) -> list[Macro]:
        return [m for m in self.macros if not m.fixed]

    @property
    def preplaced_macros(self) -> list[Macro]:
        return [m for m in self.macros if m.fixed]

    @property
    def cells(self) -> list[Cell]:
        return self.nodes(NodeKind.CELL)  # type: ignore[return-value]

    @property
    def pads(self) -> list[IOPad]:
        return self.nodes(NodeKind.PAD)  # type: ignore[return-value]

    # -- statistics ---------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counts matching the paper's benchmark tables (Table II/III rows)."""
        return {
            "movable_macros": len(self.movable_macros),
            "preplaced_macros": len(self.preplaced_macros),
            "pads": len(self.pads),
            "cells": len(self.cells),
            "nets": len(self.nets),
        }


@dataclass
class PlacementRegion:
    """The rectangular core area macros and cells must stay inside."""

    x: float = 0.0
    y: float = 0.0
    width: float = 1000.0
    height: float = 1000.0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def x_max(self) -> float:
        return self.x + self.width

    @property
    def y_max(self) -> float:
        return self.y + self.height

    def contains(self, node: Node, tol: float = 1e-9) -> bool:
        """True when *node*'s rectangle lies fully inside the region."""
        return (
            node.x >= self.x - tol
            and node.y >= self.y - tol
            and node.x + node.width <= self.x_max + tol
            and node.y + node.height <= self.y_max + tol
        )

    def clamp(self, node: Node) -> None:
        """Shift *node* by the minimum amount needed to fit in the region."""
        node.x = min(max(node.x, self.x), max(self.x, self.x_max - node.width))
        node.y = min(max(node.y, self.y), max(self.y, self.y_max - node.height))


@dataclass
class Design:
    """A netlist bound to a placement region — the unit every placer consumes."""

    netlist: Netlist
    region: PlacementRegion

    @property
    def name(self) -> str:
        return self.netlist.name

    def clone_placement(self) -> dict[str, tuple[float, float]]:
        """Snapshot of every node's lower-left position (for save/restore)."""
        return {n.name: (n.x, n.y) for n in self.netlist}

    def restore_placement(self, snapshot: dict[str, tuple[float, float]]) -> None:
        """Restore positions captured by :meth:`clone_placement`."""
        for name, (x, y) in snapshot.items():
            node = self.netlist[name]
            node.x = x
            node.y = y
