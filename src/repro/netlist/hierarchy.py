"""Hierarchy-path utilities.

The industrial benchmarks carry logical hierarchy (``top/cpu/alu/mult``).
The grouping score Γ (Eq. 1) includes H(g_i, g_j): "the common parts of the
hierarchy names" — implemented here as the length of the shared path prefix.
"""

from __future__ import annotations

SEPARATOR = "/"


def split_path(path: str) -> list[str]:
    """Split a hierarchy path into components, ignoring empty segments."""
    return [part for part in path.split(SEPARATOR) if part]


def common_prefix_depth(a: str, b: str) -> int:
    """Number of leading path components *a* and *b* share.

    ``common_prefix_depth("top/cpu/alu", "top/cpu/fpu") == 2``.
    An empty path shares nothing with anything.
    """
    pa, pb = split_path(a), split_path(b)
    depth = 0
    for ca, cb in zip(pa, pb):
        if ca != cb:
            break
        depth += 1
    return depth


def common_prefix(a: str, b: str) -> str:
    """The shared leading path of *a* and *b* (possibly empty)."""
    pa = split_path(a)
    depth = common_prefix_depth(a, b)
    return SEPARATOR.join(pa[:depth])


def depth(path: str) -> int:
    """Number of components in *path*."""
    return len(split_path(path))


def parent(path: str) -> str:
    """The path with its last component removed (empty for top-level)."""
    parts = split_path(path)
    return SEPARATOR.join(parts[:-1])
