"""Half-perimeter wirelength (HPWL) evaluation.

The paper's wirelength W (Eq. 9) is "estimated in the half perimeter
wirelength model".  HPWL of a net is ``(max_x - min_x) + (max_y - min_y)``
over its pin positions; the design HPWL is the (optionally net-weighted) sum.

Two interfaces are provided:

- :func:`hpwl` / :func:`net_hpwl` — convenience functions over the object
  model; fine for tests and small designs.
- :class:`FlatNetlist` — a compiled structure-of-arrays view with
  ``reduceat``-vectorized evaluation.  All inner loops of the placers (RL
  episodes, SE/SA moves, MCTS terminal evaluations) go through this view.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.model import Net, Netlist


def net_hpwl(netlist: Netlist, net: Net) -> float:
    """HPWL of a single *net* under the current placement (unweighted)."""
    if net.degree < 2:
        return 0.0
    xs = []
    ys = []
    for pin in net.pins:
        node = netlist[pin.node]
        xs.append(node.cx + pin.dx)
        ys.append(node.cy + pin.dy)
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl(netlist: Netlist, weighted: bool = False) -> float:
    """Total design HPWL; multiply per-net HPWL by ``net.weight`` if *weighted*."""
    total = 0.0
    for net in netlist.nets:
        w = net.weight if weighted else 1.0
        total += w * net_hpwl(netlist, net)
    return total


class FlatNetlist:
    """Structure-of-arrays netlist view for vectorized wirelength queries.

    The pin list is stored CSR-style: ``pin_node[k]`` is the node index of
    the k-th pin, nets occupy the contiguous ranges ``net_ptr[i]:net_ptr[i+1]``.
    Nets with fewer than two pins are dropped at compile time (their HPWL is
    identically zero).

    Node *centers* are kept in ``cx``/``cy``; callers move nodes by editing
    those arrays (or via :meth:`set_centers`) and call :meth:`total_hpwl`.
    :meth:`writeback` pushes center coordinates back into the object model.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.names = netlist.node_names
        n = len(self.names)
        self.width = np.empty(n)
        self.height = np.empty(n)
        self.cx = np.empty(n)
        self.cy = np.empty(n)
        self.fixed = np.zeros(n, dtype=bool)
        for i, node in enumerate(netlist):
            self.width[i] = node.width
            self.height[i] = node.height
            self.cx[i] = node.cx
            self.cy[i] = node.cy
            self.fixed[i] = node.fixed

        pin_node: list[int] = []
        pin_dx: list[float] = []
        pin_dy: list[float] = []
        net_ptr: list[int] = [0]
        net_weight: list[float] = []
        self.kept_nets: list[Net] = []
        for net in netlist.nets:
            if net.degree < 2:
                continue
            for pin in net.pins:
                pin_node.append(netlist.index_of(pin.node))
                pin_dx.append(pin.dx)
                pin_dy.append(pin.dy)
            net_ptr.append(len(pin_node))
            net_weight.append(net.weight)
            self.kept_nets.append(net)
        self.pin_node = np.asarray(pin_node, dtype=np.int64)
        self.pin_dx = np.asarray(pin_dx)
        self.pin_dy = np.asarray(pin_dy)
        self.net_ptr = np.asarray(net_ptr, dtype=np.int64)
        self.net_weight = np.asarray(net_weight)
        # reduceat segment starts (net_ptr without the trailing sentinel)
        self._starts = self.net_ptr[:-1]

    @property
    def n_nodes(self) -> int:
        return len(self.names)

    @property
    def n_nets(self) -> int:
        return len(self._starts)

    # -- placement plumbing --------------------------------------------------
    def refresh_from_model(self) -> None:
        """Re-read node centers from the object model."""
        for i, node in enumerate(self.netlist):
            self.cx[i] = node.cx
            self.cy[i] = node.cy

    def writeback(self) -> None:
        """Push center coordinates back to the object model (as lower-left).

        Fixed nodes are skipped: nothing may move them, and re-deriving
        their lower-left from the center would perturb the last floating-
        point bit.
        """
        for i, node in enumerate(self.netlist):
            if node.fixed:
                continue
            node.move_center_to(float(self.cx[i]), float(self.cy[i]))

    def set_centers(self, indices: np.ndarray, cx: np.ndarray, cy: np.ndarray) -> None:
        """Move the nodes at *indices* so their centers are (cx, cy)."""
        self.cx[indices] = cx
        self.cy[indices] = cy

    # -- wirelength ----------------------------------------------------------
    def pin_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Absolute (x, y) of every pin under the current centers."""
        px = self.cx[self.pin_node] + self.pin_dx
        py = self.cy[self.pin_node] + self.pin_dy
        return px, py

    def per_net_hpwl(self) -> np.ndarray:
        """Unweighted HPWL of every kept net (length :attr:`n_nets`)."""
        if self.n_nets == 0:
            return np.zeros(0)
        px, py = self.pin_positions()
        dx = np.maximum.reduceat(px, self._starts) - np.minimum.reduceat(
            px, self._starts
        )
        dy = np.maximum.reduceat(py, self._starts) - np.minimum.reduceat(
            py, self._starts
        )
        return dx + dy

    def total_hpwl(self, weighted: bool = False) -> float:
        """Total HPWL; multiplied by per-net weights when *weighted*."""
        per_net = self.per_net_hpwl()
        if weighted:
            per_net = per_net * self.net_weight
        return float(per_net.sum())

    # -- incidence helpers (used by clustering and net models) ---------------
    def nets_of_node(self) -> list[list[int]]:
        """For each node index, the list of kept-net indices touching it."""
        out: list[list[int]] = [[] for _ in range(self.n_nodes)]
        net_of_pin = np.repeat(
            np.arange(self.n_nets), np.diff(self.net_ptr)
        )
        for pin_idx, node_idx in enumerate(self.pin_node):
            out[node_idx].append(int(net_of_pin[pin_idx]))
        return out
