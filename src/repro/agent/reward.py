"""Reward functions (Sec. III-E).

The paper's key training trick: normalize the terminal wirelength so
rewards sit *slightly above zero*.  Before training, 50 random episodes are
played; their maximum, minimum and average wirelengths (δ, γ, Δ in the
paper's notation) calibrate Eq. 9:

    𝔇(W) = (−W + Δ) / (δ − γ) + α ,   α ∈ [0.5, 1]

Three variants feed the Fig. 4 study:

- :class:`NormalizedReward` with α > 0 — the proposed function;
- :class:`NormalizedReward` with α = 0 — ablation ("close to zero");
- :class:`NegativeWirelength` — the intuitive −W baseline that the paper
  shows failing to converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.utils.rng import ensure_rng


class RewardFunction(Protocol):
    """Maps a terminal wirelength to a scalar episode reward."""

    def __call__(self, wirelength: float) -> float: ...


@dataclass(frozen=True)
class NormalizedReward:
    """Eq. 9 with calibration statistics from random play."""

    w_max: float  # δ
    w_min: float  # γ
    w_avg: float  # Δ
    alpha: float = 0.75

    def __post_init__(self) -> None:
        if self.w_max < self.w_min:
            raise ValueError("w_max must be >= w_min")

    @property
    def spread(self) -> float:
        return max(self.w_max - self.w_min, 1e-12)

    def __call__(self, wirelength: float) -> float:
        return (-wirelength + self.w_avg) / self.spread + self.alpha


@dataclass(frozen=True)
class NegativeWirelength:
    """The intuitive reward −W (optionally scaled for numeric sanity)."""

    scale: float = 1.0

    def __call__(self, wirelength: float) -> float:
        return -wirelength * self.scale


def calibrate_reward(
    play_random_episode: Callable[[np.random.Generator], float],
    alpha: float = 0.75,
    n_episodes: int = 50,
    rng: int | np.random.Generator | None = None,
) -> tuple[NormalizedReward, list[float]]:
    """Play *n_episodes* random episodes and fit :class:`NormalizedReward`.

    *play_random_episode* runs one uniformly-random episode and returns its
    terminal wirelength.  Returns the calibrated reward plus the sampled
    wirelengths (the paper excludes these 50 episodes from its training
    curves; callers may want them for diagnostics).
    """
    g = ensure_rng(rng)
    samples = [float(play_random_episode(g)) for _ in range(n_episodes)]
    reward = NormalizedReward(
        w_max=max(samples), w_min=min(samples), w_avg=float(np.mean(samples)),
        alpha=alpha,
    )
    return reward, samples
