"""Dihedral symmetry augmentation for training data (AlphaZero-style).

The grid-allocation MDP is (approximately) symmetric under reflections of
the die, so each transition can be replayed mirrored — a standard
sample-efficiency trick the paper does not use (exposed as the trainer's
``augment_symmetry`` option).

Only the shape-preserving operations are offered — horizontal flip,
vertical flip, and the 180° rotation — because a 90° rotation transposes a
rows×cols footprint and would change the s_m/s_a tensors themselves.
Anchors are lower-left-corner indices, so mapping an action under a flip
needs the group's span: a flip sends anchor column c to ζ − cols − c (and
rows likewise), keeping the transformed footprint over exactly the mirrored
cells.
"""

from __future__ import annotations

import numpy as np

#: supported operations
OPS = ("identity", "flip_h", "flip_v", "rot180")


def transform_planes(planes: np.ndarray, op: str) -> np.ndarray:
    """Apply *op* to a (C, ζ, ζ) plane stack (rows = y, cols = x)."""
    if op == "identity":
        return planes
    if op == "flip_h":
        return planes[:, :, ::-1].copy()
    if op == "flip_v":
        return planes[:, ::-1, :].copy()
    if op == "rot180":
        return planes[:, ::-1, ::-1].copy()
    raise ValueError(f"unknown op {op!r}; expected one of {OPS}")


def transform_anchor_array(
    values: np.ndarray, span: tuple[int, int], op: str
) -> np.ndarray:
    """Transform a flat ζ²-length anchor-indexed array under *op*.

    Entry (r, c) of the result is taken from the source anchor whose
    rows×cols footprint mirrors onto the footprint anchored at (r, c).
    Anchors whose mirrored source would fall outside the die read 0 (those
    are exactly the anchors that were invalid in the source too).
    """
    zeta = int(np.sqrt(len(values)))
    if zeta * zeta != len(values):
        raise ValueError("values length must be a perfect square (ζ²)")
    rows, cols = span
    grid = values.reshape(zeta, zeta)
    out = np.zeros_like(grid)
    flip_v = op in ("flip_v", "rot180")
    flip_h = op in ("flip_h", "rot180")
    if op == "identity":
        return values.copy()
    if op not in OPS:
        raise ValueError(f"unknown op {op!r}; expected one of {OPS}")
    for r in range(zeta):
        for c in range(zeta):
            src_r = zeta - rows - r if flip_v else r
            src_c = zeta - cols - c if flip_h else c
            if 0 <= src_r < zeta and 0 <= src_c < zeta:
                out[r, c] = grid[src_r, src_c]
    return out.ravel()


def transform_action(
    action: int, span: tuple[int, int], op: str, zeta: int
) -> int:
    """Map a flat anchor *action* under *op* (same convention as above)."""
    rows, cols = span
    r, c = divmod(action, zeta)
    if op in ("flip_v", "rot180"):
        r = zeta - rows - r
    if op in ("flip_h", "rot180"):
        c = zeta - cols - c
    r = min(max(r, 0), zeta - 1)
    c = min(max(c, 0), zeta - 1)
    return r * zeta + c


def augment_transition(
    planes: np.ndarray,
    mask: np.ndarray,
    action: int,
    span: tuple[int, int],
    op: str,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One transformed (planes, mask, action) triple.

    The plane stack is ⟨s_p, s_a, t⟩: s_p is a per-grid *image* and flips
    as one; s_a is *anchor-indexed* (its value at (r, c) describes the
    whole footprint anchored there) and must move with the anchor mapping,
    exactly like the mask and the action.
    """
    zeta = planes.shape[-1]
    s_p = transform_planes(planes[0:1], op)[0]
    s_a = transform_anchor_array(planes[1].ravel(), span, op).reshape(zeta, zeta)
    t_plane = planes[2]
    return (
        np.stack([s_p, s_a, t_plane]),
        transform_anchor_array(mask, span, op),
        transform_action(action, span, op, zeta),
    )
