"""Policy/value network (Fig. 2, Table I).

Shared trunk: Conv3×3+BN+ReLU over the input planes, then a residual tower.
Policy head: Conv1×1(→2)+BN+ReLU, flatten, Linear → ζ² logits, which the
caller masks with s_a and softmaxes (see
:func:`repro.nn.functional.masked_softmax`).
Value head: the trunk output is combined with the current placement s_p and
the sequence-number plane t (the paper's position embedding), then
Conv1×1(→1)+BN+ReLU, Linear+ReLU → 16, Linear+ReLU → ζ², Linear → 1
(linear output by default; ``NetworkConfig.value_tanh`` selects a bounded
tanh variant for ablation).

Adaptations from the paper (documented in DESIGN.md):

- the paper feeds t through a learned position embedding; here t/T enters
  as a constant input plane to both trunk and value head — the same
  information through a simpler (still learnable downstream) channel;
- paper scale is ζ=16, 128 channels, 10 ResBlocks (``NetworkConfig.paper()``);
  the default is CPU-sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.nn.blocks import ResTower
from repro.nn.dtype import default_dtype, resolve_dtype
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    Layer,
    Linear,
    Parameter,
    ReLU,
    Sequential,
)
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class NetworkConfig:
    """Topology knobs for :class:`PolicyValueNet`."""

    zeta: int = 8
    channels: int = 16
    res_blocks: int = 2
    value_hidden: int = 16
    #: squash the value through tanh (bounded (−1,1)).  The Eq. 9 reward with
    #: α ∈ [0.5, 1] routinely exceeds 1, which a tanh head cannot represent,
    #: so the default is an unbounded linear head; the tanh variant is kept
    #: for ablation.
    value_tanh: bool = False
    #: parameter/activation dtype ("float32"/"float64"); ``None`` uses the
    #: library default from :mod:`repro.nn.dtype` (float32).
    dtype: str | None = None
    seed: int = 0

    @classmethod
    def paper(cls) -> "NetworkConfig":
        """The full Table I configuration (ζ=16, 128 channels, 10 blocks)."""
        return cls(zeta=16, channels=128, res_blocks=10, value_hidden=16)


class PlaneView(NamedTuple):
    """Minimal state view the packing/evaluation batch APIs accept."""

    s_p: np.ndarray
    s_a: np.ndarray
    t: int
    total_steps: int


class PolicyValueNet(Layer):
    """Two-headed network mapping state planes to (policy logits, value)."""

    #: input planes: s_p, s_a, t/T
    IN_PLANES = 3

    def __init__(self, config: NetworkConfig = NetworkConfig()) -> None:
        self.config = config
        self.dtype = resolve_dtype(config.dtype)
        g = ensure_rng(config.seed)
        zeta = config.zeta
        ch = config.channels

        # All layers allocate their parameters in this network's dtype.
        with default_dtype(self.dtype):
            self.trunk = Sequential(
                Conv2D(self.IN_PLANES, ch, kernel=3, bias=False, rng=g),
                BatchNorm2D(ch),
                ReLU(),
                ResTower(ch, config.res_blocks, rng=g),
            )
            self.policy_head = Sequential(
                Conv2D(ch, 2, kernel=1, bias=False, rng=g),
                BatchNorm2D(2),
                ReLU(),
                Flatten(),
                Linear(2 * zeta * zeta, zeta * zeta, rng=g),
            )
            # Value head consumes trunk output ++ s_p ++ t-plane.
            self.value_conv = Sequential(
                Conv2D(ch + 2, 1, kernel=1, bias=False, rng=g),
                BatchNorm2D(1),
                ReLU(),
                Flatten(),
            )
            self.value_mlp = Sequential(
                Linear(zeta * zeta, config.value_hidden, rng=g),
                ReLU(),
                Linear(config.value_hidden, zeta * zeta, rng=g),
                ReLU(),
                Linear(zeta * zeta, 1, rng=g),
            )
        self._cache: tuple | None = None

    def children(self) -> list[Layer]:
        return [self.trunk, self.policy_head, self.value_conv, self.value_mlp]

    def parameters(self) -> list[Parameter]:
        return [p for c in self.children() for p in c.parameters()]

    # -- plane packing -----------------------------------------------------------
    def pack_planes(
        self, s_p: np.ndarray, s_a: np.ndarray, t: int, total_steps: int
    ) -> np.ndarray:
        """Stack one state into a (1, 3, ζ, ζ) input tensor (network dtype)."""
        return self.pack_planes_batch([PlaneView(s_p, s_a, t, total_steps)])

    def pack_planes_batch(self, states) -> np.ndarray:
        """Pack B states into one (B, 3, ζ, ζ) NCHW tensor.

        *states* is any sequence of objects carrying ``s_p``, ``s_a``,
        ``t`` and ``total_steps`` (:class:`repro.agent.state.EnvState`,
        :class:`PlaneView`, ...).  The tensor is allocated in the network
        dtype so one forward serves the whole batch without upcasting.
        """
        zeta = self.config.zeta
        x = np.empty((len(states), self.IN_PLANES, zeta, zeta), dtype=self.dtype)
        for i, s in enumerate(states):
            if s.s_p.shape != (zeta, zeta) or s.s_a.shape != (zeta, zeta):
                raise ValueError(
                    f"state planes must be {zeta}x{zeta}, "
                    f"got {s.s_p.shape}/{s.s_a.shape}"
                )
            x[i, 0] = s.s_p
            x[i, 1] = s.s_a
            x[i, 2] = s.t / max(s.total_steps, 1)
        return x

    # -- forward / backward ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (logits (N, ζ²), value (N,)).

        The value head is linear by default (``config.value_tanh`` enables a
        bounded tanh variant for ablation).
        """
        trunk_out = self.trunk(x)
        logits = self.policy_head(trunk_out)
        value_in = np.concatenate([trunk_out, x[:, 0:1], x[:, 2:3]], axis=1)
        v_feat = self.value_conv(value_in)
        v_raw = self.value_mlp(v_feat)[:, 0]
        v = np.tanh(v_raw) if self.config.value_tanh else v_raw
        self._cache = (x.shape, v)
        return logits, v

    def backward(
        self, dlogits: np.ndarray, dvalue: np.ndarray
    ) -> np.ndarray:
        """Backprop both heads; *dvalue* has shape (N,)."""
        x_shape, v = self._cache
        if self.config.value_tanh:
            dv_raw = dvalue * (1.0 - v**2)  # through tanh
        else:
            dv_raw = dvalue
        d_vfeat = self.value_mlp.backward(dv_raw[:, None])
        d_value_in = self.value_conv.backward(d_vfeat)
        ch = self.config.channels
        d_trunk_from_value = d_value_in[:, :ch]
        d_trunk_from_policy = self.policy_head.backward(dlogits)
        return self.trunk.backward(d_trunk_from_policy + d_trunk_from_value)

    # -- convenience -------------------------------------------------------------
    def evaluate(
        self, s_p: np.ndarray, s_a: np.ndarray, t: int, total_steps: int
    ) -> tuple[np.ndarray, float]:
        """Inference for one state: (masked probabilities (ζ²,), value).

        Uses eval-mode batch-norm statistics and restores the previous mode.
        Delegates to :meth:`evaluate_batch` with B=1, so the single-state
        and batched paths cannot drift apart.
        """
        probs, values = self.evaluate_batch([PlaneView(s_p, s_a, t, total_steps)])
        return probs[0], float(values[0])

    def evaluate_batch(
        self, states, tile: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched inference: (masked probabilities (B, ζ²), values (B,)).

        Packs *states* (see :meth:`pack_planes_batch`) into one NCHW tensor
        and runs a single eval-mode forward — the im2col matmuls amortize
        across the batch instead of re-dispatching per state.  Each row's
        policy is softmaxed under that state's availability mask
        (``s_a > 0``; an all-masked row falls back to the plain softmax,
        matching the single-state path).  The previous train/eval mode is
        restored on exit.

        With *tile* set, the forward runs through :meth:`forward_eval_tiled`
        instead of one variable-size forward; see that method for why the
        shared-inference stack needs it.  ``tile=None`` (the default) is
        byte-for-byte the historical path.
        """
        from repro.nn.functional import masked_softmax

        zeta = self.config.zeta
        if len(states) == 0:
            return np.zeros((0, zeta * zeta)), np.zeros(0)
        x = self.pack_planes_batch(states)
        if tile is None:
            logits, v = self.forward_eval(x)
        else:
            logits, v = self.forward_eval_tiled(x, tile)
        probs = masked_softmax(logits, self.policy_masks(states), axis=1)
        return probs, np.asarray(v, dtype=np.float64)

    def policy_masks(self, states) -> np.ndarray:
        """Per-state availability masks for the policy softmax (B, ζ²).

        Shared by :meth:`evaluate_batch` and the broker-served
        :class:`~repro.inference.client.InferenceClient` path, which
        receives raw logits/value rows and applies the identical masking
        tail locally — keeping both paths literally the same code.
        """
        zeta = self.config.zeta
        masks = np.empty((len(states), zeta * zeta))
        for i, s in enumerate(states):
            mask = (s.s_a > 0).ravel().astype(float)
            if not mask.any():
                mask = np.ones_like(mask)
            masks[i] = mask
        return masks

    def forward_eval(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One eval-mode forward, restoring the previous train/eval mode."""
        was_training = self.training
        if was_training:  # avoid two full layer-tree walks per call when
            self.eval()  # the network already sits in eval mode
        try:
            return self.forward(x)
        finally:
            if was_training:
                self.train(True)

    def forward_eval_tiled(
        self, x: np.ndarray, tile: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eval-mode forward in fixed-size zero-padded chunks of *tile* rows.

        BLAS picks different GEMM kernels/blockings for different batch-row
        counts, so a row's result is *not* bitwise stable across batch
        sizes — but at a fixed row count it is bitwise independent of both
        its position and the other rows' content (zero padding included).
        Running every forward as exact *tile*-row chunks therefore makes
        each state's (logits, value) invariant to how requests were
        coalesced, which is what lets the inference broker batch across
        jobs while staying bitwise-identical to a private network using
        the same tile.
        """
        n = len(x)
        if n == 0:
            zeta = self.config.zeta
            return np.zeros((0, zeta * zeta), dtype=x.dtype), np.zeros(0)
        out_logits, out_v = [], []
        was_training = self.training
        if was_training:
            self.eval()
        try:
            for start in range(0, n, tile):
                chunk = x[start : start + tile]
                rows = len(chunk)
                if rows < tile:
                    pad = np.zeros(
                        (tile - rows,) + chunk.shape[1:], dtype=chunk.dtype
                    )
                    chunk = np.concatenate([chunk, pad], axis=0)
                logits, v = self.forward(chunk)
                out_logits.append(logits[:rows])
                out_v.append(v[:rows])
        finally:
            if was_training:
                self.train(True)
        return np.concatenate(out_logits), np.concatenate(out_v)
