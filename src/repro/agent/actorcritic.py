"""Actor-Critic pre-training (Sec. III-D, Algorithm 1 lines 3–10).

Every episode walks the environment with actions sampled from the masked
policy; the terminal wirelength is converted to a reward that is assigned
to *every* step of the episode ("the reward value for each non-terminal
step ... is set according to the value obtained in the last step"), because
the value network must learn to judge *partial* placements — that is what
MCTS later uses at non-terminal nodes.

Losses (Eq. 5–8):

    L_policy = Σ_t −log p_θ,t(a_t) · A_t ,   A_t = R_t − v_θ,t
    L_value  = E[A_t²]
    L        = L_policy + L_value

The gradient of −log p(a) under the mask-renormalized softmax is the usual
``probs − onehot(a)`` (the mask is constant), so both heads reduce to dense
gradients on the network outputs.  Parameters update every
``update_every`` episodes (paper: 30).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.agent.network import PolicyValueNet
from repro.agent.reward import RewardFunction
from repro.nn.functional import masked_softmax

if TYPE_CHECKING:  # avoids the env <-> agent import cycle at runtime
    from repro.env.placement_env import MacroGroupPlacementEnv
from repro.nn.optim import Adam, clip_gradients
from repro.runtime import faults
from repro.runtime.errors import PlacementError, TrainingDivergedError
from repro.utils.events import EventLog
from repro.utils.rng import ensure_rng


@dataclass
class _Transition:
    planes: np.ndarray  # (3, ζ, ζ)
    mask: np.ndarray  # (ζ²,)
    action: int
    #: (rows, cols) footprint of the group being placed — needed to mirror
    #: anchor-indexed data under symmetry augmentation.
    span: tuple[int, int] = (1, 1)
    reward: float = 0.0


@dataclass
class Snapshot:
    """Deep copy of network parameters + BN statistics (Fig. 5 checkpoints)."""

    episode: int
    params: list[np.ndarray]
    bn_stats: list[tuple[np.ndarray, np.ndarray]]


@dataclass
class TrainingHistory:
    """Per-episode telemetry of a training run."""

    rewards: list[float] = field(default_factory=list)
    wirelengths: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    snapshots: list[Snapshot] = field(default_factory=list)

    def best_wirelength(self) -> float:
        return min(self.wirelengths) if self.wirelengths else float("nan")


class ActorCriticTrainer:
    """Trains a :class:`PolicyValueNet` on a placement environment.

    With ``n_envs > 1`` episodes roll out in synchronized waves: N
    environments step in lock-step and every step costs one *batched*
    network forward instead of N single-state forwards.  Each episode in a
    wave samples from its own deterministic RNG stream and keeps its own
    transition buffer; updates and checkpoints still fire on the same
    per-episode boundaries.  ``n_envs=1`` reproduces the sequential
    trainer bit-for-bit under a fixed seed.
    """

    def __init__(
        self,
        env: "MacroGroupPlacementEnv",
        network: PolicyValueNet,
        reward_fn: RewardFunction,
        lr: float = 1e-3,
        update_every: int = 30,
        grad_clip: float = 5.0,
        entropy_coef: float = 0.0,
        epochs_per_update: int = 1,
        augment_symmetry: bool = False,
        n_envs: int = 1,
        rng: int | np.random.Generator | None = None,
        events: EventLog | None = None,
        budget=None,
        max_divergence_rollbacks: int = 8,
        max_episode_failures: int = 8,
        terminal_pool=None,
        inference=None,
    ) -> None:
        if network.config.zeta != env.coarse.plan.zeta:
            raise ValueError(
                f"network grid ({network.config.zeta}) != plan grid "
                f"({env.coarse.plan.zeta})"
            )
        self.env = env
        self.network = network
        self.reward_fn = reward_fn
        self.update_every = update_every
        self.grad_clip = grad_clip
        self.entropy_coef = entropy_coef
        self.epochs_per_update = max(1, epochs_per_update)
        self.augment_symmetry = augment_symmetry
        #: episodes rolled out per batched policy forward (N); 1 reproduces
        #: the sequential trainer bit-for-bit under a fixed seed.
        self.n_envs = max(1, int(n_envs))
        self.optimizer = Adam(network.parameters(), lr=lr)
        self.rng = ensure_rng(rng)
        self._buffer: list[_Transition] = []
        self._shadow_envs: list["MacroGroupPlacementEnv"] = []
        #: runtime plumbing (all optional): structured event log, wall-clock
        #: budget polled at episode boundaries, and a hook the harness uses
        #: to persist intra-stage snapshots (called as hook(trainer, hist)).
        self.events = events if events is not None else EventLog()
        self.budget = budget
        self.checkpoint_hook = None
        #: optional :class:`~repro.parallel.TerminalEvaluationPool`: the
        #: n_envs episodes of a rollout wave finalize concurrently through
        #: it (terminal evaluation is pure, so pooled results are
        #: bitwise-identical to sequential ``env.finalize()`` calls).
        self.terminal_pool = terminal_pool
        #: rollout evaluation surface.  Defaults to the network; in broker
        #: mode the flow passes a *publishable*
        #: :class:`~repro.inference.InferenceClient` — rollouts then
        #: evaluate through the shared broker, and every parameter update
        #: (including rollback restores) publishes a new weight epoch so
        #: the broker replica can never be read torn.  Updates themselves
        #: always run on the local network.
        self._infer = inference if inference is not None else network
        self.max_divergence_rollbacks = max_divergence_rollbacks
        self.max_episode_failures = max_episode_failures
        self.divergence_rollbacks = 0
        self.episode_failures = 0
        self._consecutive_divergences = 0

    # -- rollout --------------------------------------------------------------
    @staticmethod
    def _pick_action(
        probs: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
        sample: bool,
    ) -> int:
        """Mask, renormalize, and sample/argmax one action.

        Shared by the sequential and batched rollout paths so their
        arithmetic (and therefore their RNG consumption) is identical.
        """
        probs = probs * mask
        total = probs.sum()
        if total <= 0:
            probs = mask / mask.sum()
        else:
            probs = probs / total
        if sample:
            return int(rng.choice(len(probs), p=probs))
        return int(np.argmax(probs))

    def play_episode(self, sample: bool = True) -> tuple[list[_Transition], float]:
        """One full episode; returns its transitions and terminal wirelength."""
        env = self.env
        net = self.network
        transitions: list[_Transition] = []
        state = env.reset()
        done = False
        while not done:
            probs, _v = self._infer.evaluate(
                state.s_p, state.s_a, state.t, state.total_steps
            )
            action = self._pick_action(probs, state.action_mask, self.rng, sample)
            transitions.append(
                _Transition(
                    planes=net.pack_planes(
                        state.s_p, state.s_a, state.t, state.total_steps
                    )[0],
                    mask=state.action_mask.copy(),
                    action=action,
                    span=env.builder.footprint(state.t).shape,
                )
            )
            state, done = env.step(action)
        wirelength = env.finalize()
        return transitions, wirelength

    def _rollout_envs(self, n: int) -> list["MacroGroupPlacementEnv"]:
        """The first env plus lazily-built shadows sharing the coarse design.

        Shadows share the coarse netlist and legalizer — safe because
        terminal evaluations (the only mutating calls) run sequentially at
        wave end — but each owns its :class:`StateBuilder`, so the N
        occupancy grids evolve independently.
        """
        from repro.env.placement_env import MacroGroupPlacementEnv

        while len(self._shadow_envs) < n - 1:
            self._shadow_envs.append(
                MacroGroupPlacementEnv(
                    self.env.coarse,
                    legalizer=self.env.legalizer,
                    cell_place_iters=self.env.cell_place_iters,
                )
            )
        return [self.env] + self._shadow_envs[: n - 1]

    def play_episodes(
        self, n: int, sample: bool = True
    ) -> list[tuple[list[_Transition], float]]:
        """Roll out *n* synchronized episodes with one batched forward per step.

        All episodes place the same macro-group sequence, so the N
        environments stay in lock-step: each step packs the N states into
        one tensor, runs a single :meth:`PolicyValueNet.evaluate_batch`
        forward, and samples each env's action from its own RNG stream.
        At ``n == 1`` the single stream *is* ``self.rng`` and no extra
        entropy is drawn, which keeps the wave path bit-identical to
        :meth:`play_episode`; at ``n > 1`` per-env child streams are seeded
        from ``self.rng`` (one deterministic draw, captured by
        checkpoint/resume).  Terminal legalize-and-measure still runs
        per-episode, in env order, preserving per-episode semantics.
        """
        net = self.network
        envs = self._rollout_envs(n)
        if n == 1:
            rngs = [self.rng]
        else:
            seeds = self.rng.integers(0, 2**63, size=n)
            rngs = [np.random.default_rng(int(s)) for s in seeds]
        states = [env.reset() for env in envs]
        transitions: list[list[_Transition]] = [[] for _ in range(n)]
        for _step in range(envs[0].n_steps):
            probs_batch, _values = self._infer.evaluate_batch(states)
            next_states = []
            for i, env in enumerate(envs):
                state = states[i]
                action = self._pick_action(
                    probs_batch[i], state.action_mask, rngs[i], sample
                )
                transitions[i].append(
                    _Transition(
                        planes=net.pack_planes(
                            state.s_p, state.s_a, state.t, state.total_steps
                        )[0],
                        mask=state.action_mask.copy(),
                        action=action,
                        span=env.builder.footprint(state.t).shape,
                    )
                )
                next_state, _done = env.step(action)
                next_states.append(next_state)
            states = next_states
        pool = self.terminal_pool
        if n > 1 and pool is not None and pool.parallel:
            # Concurrent episode finalization: purity guarantees the pooled
            # wirelengths match sequential finalize() calls bitwise.
            wirelengths = pool.evaluate_many([env.assignment for env in envs])
            return [(transitions[i], wirelengths[i]) for i in range(n)]
        return [(transitions[i], envs[i].finalize()) for i in range(n)]

    # -- update ------------------------------------------------------------------
    def _update(self) -> tuple[float, float]:
        """Gradient step(s) over the buffered transitions; returns (loss, norm).

        ``epochs_per_update > 1`` re-walks the same batch several times — a
        pragmatic sample-efficiency boost for short CPU training budgets
        (the paper's 30-episode single update assumes hours of training).
        """
        batch = self._buffer
        self._buffer = []
        if not batch:
            return 0.0, 0.0
        if self.augment_symmetry:
            from repro.agent.symmetry import OPS, augment_transition

            mirrored = []
            for t in batch:
                op = str(self.rng.choice(OPS[1:]))  # one non-identity op
                planes, mask, action = augment_transition(
                    t.planes, t.mask, t.action, t.span, op
                )
                mirrored.append(
                    _Transition(
                        planes=planes, mask=mask, action=action,
                        span=t.span, reward=t.reward,
                    )
                )
            batch = batch + mirrored
        net = self.network
        net.train(True)
        x = np.stack([t.planes for t in batch])
        masks = np.stack([t.mask for t in batch])
        rewards = np.array([t.reward for t in batch])
        actions = np.array([t.action for t in batch])
        b = len(batch)

        loss = norm = 0.0
        for _epoch in range(self.epochs_per_update):
            loss, norm = self._one_step(net, x, masks, rewards, actions, b)
        return loss, norm

    def _one_step(self, net, x, masks, rewards, actions, b) -> tuple[float, float]:
        logits, values = net.forward(x)
        probs = masked_softmax(logits, masks, axis=1)
        advantages = rewards - values  # A_t = R_t − v_θ,t  (Eq. 6)

        onehot = np.zeros_like(probs)
        onehot[np.arange(b), actions] = 1.0
        # Policy gradient: advantage treated as constant (standard A2C).
        dlogits = (probs - onehot) * advantages[:, None] / b
        if self.entropy_coef > 0.0:
            # Entropy bonus: ∂(−H)/∂logits = p ⊙ (log p − Σ p log p)
            safe = np.where(probs > 0, probs, 1.0)
            logp = np.log(safe)
            ent_grad = probs * (logp - (probs * logp).sum(axis=1, keepdims=True))
            dlogits += self.entropy_coef * ent_grad / b
        dvalues = -2.0 * advantages / b  # from L_value = E[A²]  (Eq. 7)

        p_sel = probs[np.arange(b), actions]
        policy_loss = float(
            (-np.log(np.clip(p_sel, 1e-12, None)) * advantages).mean()
        )
        value_loss = float((advantages**2).mean())
        loss = policy_loss + value_loss  # Eq. 8
        if faults.should_fire("trainer.nan_loss"):
            loss = float("nan")
            net.parameters()[0].data += float("nan")

        net.zero_grad()
        # Advantage/loss arithmetic stays float64; the backward pass runs in
        # the network dtype so float32 networks backprop without upcasting.
        net.backward(
            dlogits.astype(net.dtype, copy=False),
            dvalues.astype(net.dtype, copy=False),
        )
        norm = clip_gradients(net.parameters(), self.grad_clip)
        self.optimizer.step()
        return loss, norm

    # -- guarded update (NaN/divergence watchdog) ------------------------------------
    def _guarded_update(self, hist: "TrainingHistory") -> None:
        """Run one parameter update; roll back when it diverges.

        A non-finite loss, gradient norm, or parameter after the update
        discards the batch, restores parameters / BN statistics / optimizer
        moments to their pre-update values, and records a
        ``divergence_rollback`` event instead of appending to the loss
        history.  More than ``max_divergence_rollbacks`` *consecutive*
        failures escalate to :class:`TrainingDivergedError`.
        """
        from repro.nn.serialization import optimizer_state, restore_optimizer

        episode = len(hist.rewards)
        guard = self.snapshot(episode)
        guard_opt = optimizer_state(self.optimizer)
        loss, norm = self._update()
        healthy = (
            np.isfinite(loss)
            and np.isfinite(norm)
            and all(np.isfinite(p.data).all() for p in self.network.parameters())
        )
        if healthy:
            self._consecutive_divergences = 0
            hist.losses.append(loss)
            hist.grad_norms.append(norm)
            self._publish_weights()
            return
        self.restore(self.network, guard)
        restore_optimizer(self.optimizer, guard_opt)
        # The restore also changed the live weights; publish so a broker
        # replica never keeps serving the diverged half-step.
        self._publish_weights()
        self.divergence_rollbacks += 1
        self._consecutive_divergences += 1
        self.events.emit(
            "divergence_rollback",
            stage="rl_training",
            episode=episode,
            loss=None if not np.isfinite(loss) else float(loss),
        )
        if self._consecutive_divergences > self.max_divergence_rollbacks:
            raise TrainingDivergedError(
                f"{self._consecutive_divergences} consecutive diverged "
                "updates; parameters rolled back to last healthy state",
                stage="rl_training",
                episode=episode,
            )

    def _publish_weights(self) -> None:
        """Advance the shared-inference weight epoch after any weight
        change (no-op when rollouts evaluate on the plain network or on
        a non-publishable client)."""
        publish = getattr(self._infer, "publish", None)
        if publish is not None and getattr(self._infer, "publishable", False):
            publish()

    # -- checkpoints ----------------------------------------------------------------
    def snapshot(self, episode: int) -> Snapshot:
        from repro.nn.serialization import _batchnorms

        return Snapshot(
            episode=episode,
            params=[p.data.copy() for p in self.network.parameters()],
            bn_stats=[
                (bn.running_mean.copy(), bn.running_var.copy())
                for bn in _batchnorms(self.network)
            ],
        )

    @staticmethod
    def restore(network: PolicyValueNet, snap: Snapshot) -> None:
        from repro.nn.serialization import _batchnorms

        for p, data in zip(network.parameters(), snap.params):
            p.data[...] = data
        for bn, (mean, var) in zip(_batchnorms(network), snap.bn_stats):
            bn.running_mean[...] = mean
            bn.running_var[...] = var

    def network_at(self, snap: Snapshot) -> PolicyValueNet:
        """A fresh network carrying *snap*'s weights."""
        net = PolicyValueNet(copy.deepcopy(self.network.config))
        self.restore(net, snap)
        return net

    # -- full-state checkpoint/resume ------------------------------------------------
    def export_state(self, history: "TrainingHistory") -> dict:
        """Everything needed to resume training bit-for-bit at this point:
        parameters, BN statistics, optimizer moments, RNG state, the
        not-yet-consumed transition buffer, and the telemetry so far
        (``history.snapshots`` excepted — Fig. 5 replay data, not resume
        state)."""
        from repro.nn.serialization import _batchnorms, optimizer_state

        return {
            "version": 1,
            "params": [p.data.copy() for p in self.network.parameters()],
            "bn": [
                (bn.running_mean.copy(), bn.running_var.copy())
                for bn in _batchnorms(self.network)
            ],
            "opt": optimizer_state(self.optimizer),
            "rng": self.rng.bit_generator.state,
            "buffer": [
                {
                    "planes": t.planes,
                    "mask": t.mask,
                    "action": t.action,
                    "span": t.span,
                    "reward": t.reward,
                }
                for t in self._buffer
            ],
            "history": {
                "rewards": list(history.rewards),
                "wirelengths": list(history.wirelengths),
                "losses": list(history.losses),
                "grad_norms": list(history.grad_norms),
            },
            "counters": {
                "divergence_rollbacks": self.divergence_rollbacks,
                "episode_failures": self.episode_failures,
            },
        }

    def restore_state(self, state: dict) -> "TrainingHistory":
        """Inverse of :meth:`export_state`; returns the restored history."""
        from repro.nn.serialization import _batchnorms, restore_optimizer

        for p, data in zip(self.network.parameters(), state["params"]):
            p.data[...] = data
        for bn, (mean, var) in zip(_batchnorms(self.network), state["bn"]):
            bn.running_mean[...] = mean
            bn.running_var[...] = var
        restore_optimizer(self.optimizer, state["opt"])
        self.rng.bit_generator.state = state["rng"]
        self._buffer = [
            _Transition(
                planes=t["planes"],
                mask=t["mask"],
                action=t["action"],
                span=tuple(t["span"]),
                reward=t["reward"],
            )
            for t in state["buffer"]
        ]
        counters = state.get("counters", {})
        self.divergence_rollbacks = counters.get("divergence_rollbacks", 0)
        self.episode_failures = counters.get("episode_failures", 0)
        h = state["history"]
        return TrainingHistory(
            rewards=list(h["rewards"]),
            wirelengths=list(h["wirelengths"]),
            losses=list(h["losses"]),
            grad_norms=list(h["grad_norms"]),
        )

    def _take_checkpoint(self, hist: TrainingHistory, episode_index: int) -> None:
        hist.snapshots.append(self.snapshot(episode_index))
        if self.checkpoint_hook is not None:
            self.checkpoint_hook(self, hist)

    # -- main loop ----------------------------------------------------------------
    def train(
        self,
        n_episodes: int,
        checkpoint_every: int | None = None,
        history: TrainingHistory | None = None,
    ) -> TrainingHistory:
        """Train until the history holds *n_episodes* episodes, updating
        every ``update_every``.

        With *checkpoint_every*, parameter snapshots are stored in the
        history — the Fig. 5 experiment replays MCTS from each of them —
        and the final episode is always snapshotted even when it does not
        land on a cadence boundary, so resume never loses the tail of
        training.  Passing a partially-filled *history* (stage resume)
        runs only the remaining episodes.  A wall-clock ``budget`` ends
        training early with the best-so-far (anytime) history; episode
        exceptions are skipped and non-finite updates rolled back, each
        within its configured tolerance.
        """
        hist = history if history is not None else TrainingHistory()
        while len(hist.rewards) < n_episodes:
            faults.check_kill("trainer.kill", stage="rl_training")
            if self.budget is not None and self.budget.exhausted():
                self.events.emit(
                    "budget_exhausted",
                    stage="rl_training",
                    episode=len(hist.rewards),
                    elapsed=round(self.budget.elapsed(), 3),
                )
                break
            n_wave = min(self.n_envs, n_episodes - len(hist.rewards))
            try:
                if faults.should_fire("trainer.episode"):
                    raise RuntimeError("injected episode fault")
                wave_started = time.perf_counter()
                episodes = self.play_episodes(n_wave, sample=True)
            except PlacementError:
                raise
            except Exception as exc:
                # A failure anywhere in the wave discards the whole wave
                # (at N=1 this is exactly the old single-episode skip).
                self.episode_failures += 1
                self.events.emit(
                    "episode_failed",
                    stage="rl_training",
                    episode=len(hist.rewards) + 1,
                    wave=n_wave,
                    error=str(exc),
                )
                if self.episode_failures > self.max_episode_failures:
                    raise TrainingDivergedError(
                        f"{self.episode_failures} failed episodes exceed "
                        "tolerance",
                        stage="rl_training",
                        last_error=str(exc),
                    ) from exc
                continue
            if n_wave > 1:
                self.events.emit(
                    "rollout_wave",
                    stage="rl_training",
                    episodes=n_wave,
                    seconds=round(time.perf_counter() - wave_started, 6),
                )
            # Episodes of one wave are consumed in env order: buffer append,
            # history append, and the update/checkpoint cadences all observe
            # the same per-episode boundaries the sequential trainer does.
            for transitions, wirelength in episodes:
                reward = float(self.reward_fn(wirelength))
                for t in transitions:
                    t.reward = reward  # r_t = r_n for every step (Sec. III-E)
                self._buffer.extend(transitions)
                hist.rewards.append(reward)
                hist.wirelengths.append(wirelength)

                episode_index = len(hist.rewards)
                if episode_index % self.update_every == 0:
                    self._guarded_update(hist)
                if checkpoint_every and episode_index % checkpoint_every == 0:
                    self._take_checkpoint(hist, episode_index)
        final_episode = len(hist.rewards)
        if (
            checkpoint_every
            and final_episode
            and (not hist.snapshots or hist.snapshots[-1].episode != final_episode)
        ):
            self._take_checkpoint(hist, final_episode)
        return hist
