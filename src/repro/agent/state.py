"""State representation s_t = ⟨s_p, s_a, t⟩ (Sec. III-B).

- **s_p** — per-grid utilization of the macro groups allocated so far, with
  every group aligned to the lower-left corner of its anchor grid and the
  value capped at 1.
- **s_m** — the next group's own footprint matrix over the grids it spans.
- **s_a** — availability of each anchor grid for the next group, Eq. 4:
  the geometric mean of ``(1 − s_m(g_i)) · (1 − s_p(g_i))`` over the *n*
  grids the group would cover when anchored at *g* (0 where the span would
  leave the die).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coarsen.coarse import CoarseNetlist
from repro.grid.plan import GridPlan


def group_utilization(
    plan: GridPlan, width: float, height: float
) -> np.ndarray:
    """The s_m matrix: per-grid utilization of a w×h rectangle.

    The rectangle is aligned to the lower-left corner of its span; entry
    ``[dr, dc]`` is the fraction of grid (dr, dc) it covers, capped at 1.
    """
    rows, cols = plan.span(width, height)
    gw, gh = plan.cell_width, plan.cell_height
    util = np.zeros((rows, cols))
    for dr in range(rows):
        for dc in range(cols):
            w = min(width, (dc + 1) * gw) - dc * gw
            h = min(height, (dr + 1) * gh) - dr * gh
            if w > 0 and h > 0:
                util[dr, dc] = min((w * h) / plan.cell_area, 1.0)
    return util


@dataclass(frozen=True)
class EnvState:
    """One observation handed to the agent.

    ``s_p`` and ``s_a`` are ζ×ζ float arrays; ``t`` is the index of the
    macro group about to be placed; ``total_steps`` the episode length
    (used to normalize the position embedding).  ``mask`` flags anchors
    with strictly positive availability — the policy is restricted to it
    unless it is empty, in which case ``fallback_mask`` (anchors whose span
    fits the die) applies.
    """

    s_p: np.ndarray
    s_a: np.ndarray
    t: int
    total_steps: int
    mask: np.ndarray
    fallback_mask: np.ndarray

    @property
    def action_mask(self) -> np.ndarray:
        """Flat ζ²-length mask the policy should sample under."""
        m = self.mask.ravel()
        if m.any():
            return m.astype(float)
        return self.fallback_mask.ravel().astype(float)


class StateBuilder:
    """Incrementally maintains s_p and derives s_a for each step.

    One builder serves one episode: :meth:`reset`, then alternately
    :meth:`observe` (state for the next group) and :meth:`apply` (commit an
    anchor choice).  The coarse netlist supplies group shapes; preplaced
    macros are rasterized into the initial occupancy so the agent sees them
    as blocked area.
    """

    def __init__(self, coarse: CoarseNetlist) -> None:
        self.coarse = coarse
        self.plan = coarse.plan
        self._shapes = [g.shape() for g in coarse.macro_groups]
        self._footprints = [
            group_utilization(self.plan, w, h) for (w, h) in self._shapes
        ]
        self._fallback_masks = [
            self._build_fallback_mask(i) for i in range(len(self._footprints))
        ]
        blockers = list(coarse.design.netlist.preplaced_macros)
        self._base_occupancy = (
            self.plan.occupancy(blockers) if blockers else np.zeros((self.plan.zeta,) * 2)
        )
        self.occupancy = self._base_occupancy.copy()
        self.t = 0
        #: grid-mutation counter: bumped by apply/reset, so cached
        #: observations can tell whether the occupancy they saw is current.
        self._version = 0
        self._obs_cache: tuple[int, EnvState] | None = None

    @property
    def n_steps(self) -> int:
        return len(self._footprints)

    def reset(self) -> None:
        self.occupancy = self._base_occupancy.copy()
        self.t = 0
        self._version += 1

    def clone(self) -> "StateBuilder":
        """A cheap copy at the current (occupancy, t) point.

        Footprints, fallback masks, and the base occupancy are shared
        (immutable after construction); only the live grid is copied.  MCTS
        uses this to avoid replaying the committed prefix action-by-action
        for every selection descent.
        """
        twin = StateBuilder.__new__(StateBuilder)
        twin.coarse = self.coarse
        twin.plan = self.plan
        twin._shapes = self._shapes
        twin._footprints = self._footprints
        twin._fallback_masks = self._fallback_masks
        twin._base_occupancy = self._base_occupancy
        twin.occupancy = self.occupancy.copy()
        twin.t = self.t
        twin._version = 0
        twin._obs_cache = None
        return twin

    def footprint(self, index: int) -> np.ndarray:
        """The s_m matrix of macro group *index*."""
        return self._footprints[index]

    # -- s_p / s_a -----------------------------------------------------------
    def s_p(self) -> np.ndarray:
        """Current placement condition (utilization capped at 1)."""
        return np.minimum(self.occupancy, 1.0)

    def availability(self, index: int) -> np.ndarray:
        """s_a for macro group *index* over all ζ×ζ anchors (Eq. 4).

        Vectorized over anchors with a sliding-window view: every window
        product reduces the same elements in the same (row-major) order the
        reference per-anchor loop did, so the values are unchanged.
        """
        zeta = self.plan.zeta
        s_p = self.s_p()
        s_m = self._footprints[index]
        rows, cols = s_m.shape
        n = rows * cols
        one_minus_m = np.clip(1.0 - s_m, 0.0, None)
        s_a = np.zeros((zeta, zeta))
        if rows > zeta or cols > zeta:
            return s_a
        one_minus_p = np.clip(1.0 - s_p, 0.0, None)
        windows = np.lib.stride_tricks.sliding_window_view(
            one_minus_p, (rows, cols)
        )  # (ζ−rows+1, ζ−cols+1, rows, cols)
        prods = np.prod(windows * one_minus_m, axis=(2, 3))
        np.power(
            prods,
            1.0 / n,
            out=s_a[: zeta - rows + 1, : zeta - cols + 1],
            where=prods > 0.0,
        )
        return s_a

    def _build_fallback_mask(self, index: int) -> np.ndarray:
        zeta = self.plan.zeta
        rows, cols = self._footprints[index].shape
        mask = np.zeros((zeta, zeta), dtype=bool)
        mask[: zeta - rows + 1, : zeta - cols + 1] = True
        return mask

    def fallback_mask(self, index: int) -> np.ndarray:
        """Anchors whose span stays inside the die, availability ignored."""
        return self._fallback_masks[index].copy()

    def observe(self) -> EnvState:
        """State for the group about to be placed (``self.t``).

        Observations are cached against the grid-mutation counter: calling
        ``observe`` again before the next :meth:`apply`/:meth:`reset`
        returns the cached state instead of recomputing the s_p and
        availability planes (the planes are fresh snapshot arrays either
        way — later grid mutations never alias into them).
        """
        if self.t >= self.n_steps:
            raise IndexError("episode already complete")
        if self._obs_cache is not None and self._obs_cache[0] == self._version:
            return self._obs_cache[1]
        s_a = self.availability(self.t)
        state = EnvState(
            s_p=self.s_p(),
            s_a=s_a,
            t=self.t,
            total_steps=self.n_steps,
            mask=s_a > 0.0,
            fallback_mask=self.fallback_mask(self.t),
        )
        self._obs_cache = (self._version, state)
        return state

    def apply(self, action: int) -> None:
        """Commit the current group to flat anchor *action* and advance t."""
        if self.t >= self.n_steps:
            raise IndexError("episode already complete")
        zeta = self.plan.zeta
        r, c = self.plan.row_col(action)
        s_m = self._footprints[self.t]
        rows, cols = s_m.shape
        r = min(r, zeta - rows)
        c = min(c, zeta - cols)
        self.occupancy[r : r + rows, c : c + cols] += s_m
        self.t += 1
        self._version += 1

    def done(self) -> bool:
        return self.t >= self.n_steps
