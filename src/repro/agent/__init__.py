"""The RL agent: state encoding, policy/value network, reward, A2C trainer."""

from repro.agent.state import StateBuilder, group_utilization
from repro.agent.network import NetworkConfig, PolicyValueNet
from repro.agent.reward import (
    NegativeWirelength,
    NormalizedReward,
    RewardFunction,
    calibrate_reward,
)
from repro.agent.actorcritic import ActorCriticTrainer, TrainingHistory

__all__ = [
    "ActorCriticTrainer",
    "NegativeWirelength",
    "NetworkConfig",
    "NormalizedReward",
    "PolicyValueNet",
    "RewardFunction",
    "StateBuilder",
    "TrainingHistory",
    "calibrate_reward",
    "group_utilization",
]
