"""SA floorplanning over the B*-tree, and the derived macro-placer baseline.

Cost: α·(bbox area / total rect area) + (1−α)·(HPWL / initial HPWL) — the
classic normalized blend.  HPWL is evaluated on the macro-level model
(cells frozen at their prototype positions) so each move costs one sparse
max/min pass.

:class:`BTreeFloorplanPlacer` adapts the floorplanner into a baseline
placer: anneal the movable macros' B*-tree, center the packed block inside
the placement region (preplaced macros stay put; overlap with them is
resolved by the common greedy repair), then run the shared legalize +
cell-place exit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    MacroEvalModel,
    finalize_design,
    prototype_place,
    timer,
)
from repro.floorplan.btree import BStarTree, PackedFloorplan
from repro.netlist.model import Design
from repro.utils.rng import ensure_rng


class FloorplanSA:
    """Simulated annealing over B*-tree perturbations."""

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        n_moves: int = 2000,
        area_weight: float = 0.4,
        t0: float = 1.0,
        t_final: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.rng = ensure_rng(seed)
        self.tree = BStarTree(widths, heights, rng=self.rng)
        self.n_moves = n_moves
        self.area_weight = area_weight
        self.t0 = t0
        self.t_final = t_final
        self.total_area = float(np.sum(np.asarray(widths) * np.asarray(heights)))

    def run(
        self, wirelength_fn=None
    ) -> tuple[PackedFloorplan, BStarTree]:
        """Anneal; *wirelength_fn(packed, tree) -> float* is optional.

        Returns the best packed floorplan and the tree that produced it.
        """
        tree = self.tree
        packed = tree.pack()
        wl0 = wirelength_fn(packed, tree) if wirelength_fn else 1.0
        wl0 = max(wl0, 1e-12)

        def cost(p: PackedFloorplan) -> float:
            c = self.area_weight * p.area / max(self.total_area, 1e-12)
            if wirelength_fn:
                c += (1 - self.area_weight) * wirelength_fn(p, tree) / wl0
            return c

        current = cost(packed)
        best_cost = current
        best_state = tree.copy_state()
        best_packed = packed

        alpha = (self.t_final / self.t0) ** (1.0 / max(self.n_moves, 1))
        temp = self.t0
        for _ in range(self.n_moves):
            state = tree.copy_state()
            tree.perturb(self.rng)
            packed = tree.pack()
            new_cost = cost(packed)
            accept = new_cost <= current or self.rng.random() < math.exp(
                -(new_cost - current) / max(temp * max(current, 1e-12), 1e-300)
            )
            if accept:
                current = new_cost
                if new_cost < best_cost:
                    best_cost = new_cost
                    best_state = tree.copy_state()
                    best_packed = packed
            else:
                tree.restore_state(state)
            temp *= alpha

        tree.restore_state(best_state)
        return best_packed, tree


class BTreeFloorplanPlacer:
    """Macro placer driven by B*-tree floorplanning (SA category baseline)."""

    def __init__(
        self,
        n_moves: int = 1500,
        area_weight: float = 0.3,
        cell_place_iters: int = 3,
        skip_prototype: bool = False,
        seed: int = 0,
    ) -> None:
        self.n_moves = n_moves
        self.area_weight = area_weight
        self.cell_place_iters = cell_place_iters
        self.skip_prototype = skip_prototype
        self.seed = seed

    def place(self, design: Design) -> BaselineResult:
        with timer() as t:
            if not self.skip_prototype:
                prototype_place(design)
            model = MacroEvalModel(design)
            if model.n_macros == 0:
                return BaselineResult(
                    "btree", finalize_design(design, self.cell_place_iters),
                    t.seconds, 0,
                )
            region = design.region

            def wl(packed, tree):
                # Center the packed block in the region, then evaluate.
                w, h = tree.rect_dims()
                off_x = region.x + (region.width - packed.width) / 2.0
                off_y = region.y + (region.height - packed.height) / 2.0
                cx = packed.x + w / 2.0 + off_x
                cy = packed.y + h / 2.0 + off_y
                return model.hpwl(cx, cy)

            sa = FloorplanSA(
                model.widths,
                model.heights,
                n_moves=self.n_moves,
                area_weight=self.area_weight,
                seed=self.seed,
            )
            packed, tree = sa.run(wirelength_fn=wl)

            w, h = tree.rect_dims()
            off_x = region.x + (region.width - packed.width) / 2.0
            off_y = region.y + (region.height - packed.height) / 2.0
            cx = packed.x + w / 2.0 + off_x
            cy = packed.y + h / 2.0 + off_y
            # Commit rotations to the design before writing centers.
            for k in range(model.n_macros):
                name = model.flat.names[int(model.macro_idx[k])]
                node = design.netlist[name]
                node.width, node.height = float(w[k]), float(h[k])
            model.widths = w.copy()
            model.heights = h.copy()
            model.write_centers(cx, cy)
            hpwl = finalize_design(design, self.cell_place_iters)
        return BaselineResult("btree", hpwl, t.seconds, self.n_moves)
