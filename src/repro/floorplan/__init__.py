"""Floorplanning substrate: B*-tree representation + SA floorplanner.

The paper's first related-work category ([6]–[9], [20], [36]) is
non-deterministic floorplanning: simulated annealing over a compact
floorplan representation.  This package implements the most widely used
one — the **B\\*-tree** (Chang et al., DAC'00, the basis of MP-trees [6])
with contour-based O(n) packing — plus an annealer over tree
perturbations, exposed as the :class:`BTreeFloorplanPlacer` baseline.

It doubles as a second, independent legalization engine: any B*-tree packs
into an overlap-free placement by construction, which the property tests
exploit.
"""

from repro.floorplan.btree import BStarTree, PackedFloorplan
from repro.floorplan.annealer import FloorplanSA, BTreeFloorplanPlacer

__all__ = [
    "BStarTree",
    "BTreeFloorplanPlacer",
    "FloorplanSA",
    "PackedFloorplan",
]
