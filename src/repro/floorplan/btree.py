"""B*-tree floorplan representation with contour-based packing.

A B*-tree is an ordered binary tree over n rectangles encoding a
*left-bottom compacted* placement:

- the root sits at x = 0;
- a node's **left child** is the lowest unplaced rectangle adjacent to its
  right side (x = parent.x + parent.width);
- a node's **right child** is the lowest rectangle above it at the same x.

Packing walks the tree in DFS order keeping a *horizontal contour* (the
skyline); each rectangle's y is the maximum contour height over its x
span.  Every tree therefore packs to an overlap-free placement in O(n)
amortized — the representation's defining property, asserted by the
property tests.

Perturbations (the SA move set): rotate a rectangle, swap two rectangles'
tree positions, or delete-and-reinsert a node elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class PackedFloorplan:
    """Result of packing: lower-left corners plus the bounding box."""

    x: np.ndarray
    y: np.ndarray
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height


class _Contour:
    """Skyline as a sorted list of (x_start, x_end, height) segments."""

    def __init__(self) -> None:
        self.segments: list[tuple[float, float, float]] = [
            (0.0, float("inf"), 0.0)
        ]

    def max_height(self, x_lo: float, x_hi: float) -> float:
        h = 0.0
        for s_lo, s_hi, s_h in self.segments:
            if s_hi <= x_lo or s_lo >= x_hi:
                continue
            h = max(h, s_h)
        return h

    def add(self, x_lo: float, x_hi: float, top: float) -> None:
        """Raise the skyline over [x_lo, x_hi) to *top*."""
        new: list[tuple[float, float, float]] = []
        for s_lo, s_hi, s_h in self.segments:
            if s_hi <= x_lo or s_lo >= x_hi:
                new.append((s_lo, s_hi, s_h))
                continue
            if s_lo < x_lo:
                new.append((s_lo, x_lo, s_h))
            if s_hi > x_hi:
                new.append((x_hi, s_hi, s_h))
        new.append((x_lo, x_hi, top))
        new.sort()
        self.segments = new


class BStarTree:
    """A B*-tree over n rectangles, with packing and perturbation ops."""

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.n = len(widths)
        if self.n == 0:
            raise ValueError("need at least one rectangle")
        self.widths = np.asarray(widths, dtype=float).copy()
        self.heights = np.asarray(heights, dtype=float).copy()
        self.rotated = np.zeros(self.n, dtype=bool)
        #: which original rectangle occupies each tree slot (swap permutes it)
        self.rect_of_slot = np.arange(self.n, dtype=np.int64)
        self.parent = -np.ones(self.n, dtype=np.int64)
        self.left = -np.ones(self.n, dtype=np.int64)
        self.right = -np.ones(self.n, dtype=np.int64)
        self.root = 0
        rng = ensure_rng(rng)
        self._random_tree(rng)

    # -- construction ----------------------------------------------------------
    def _random_tree(self, rng: np.random.Generator) -> None:
        """Random initial topology: insert nodes at random free slots."""
        order = rng.permutation(self.n)
        self.root = int(order[0])
        for k in order[1:]:
            self._insert_random(int(k), rng)

    def _insert_random(self, node: int, rng: np.random.Generator) -> None:
        """Attach *node* at a random free left/right slot."""
        candidates: list[tuple[int, str]] = []
        for i in range(self.n):
            if i == node or (self.parent[i] < 0 and i != self.root):
                continue
            if self._in_tree(i):
                if self.left[i] < 0:
                    candidates.append((i, "left"))
                if self.right[i] < 0:
                    candidates.append((i, "right"))
        host, side = candidates[int(rng.integers(0, len(candidates)))]
        self._attach(node, host, side)

    def _in_tree(self, i: int) -> bool:
        return i == self.root or self.parent[i] >= 0

    def _attach(self, node: int, host: int, side: str) -> None:
        self.parent[node] = host
        if side == "left":
            if self.left[host] >= 0:
                raise ValueError("left slot occupied")
            self.left[host] = node
        else:
            if self.right[host] >= 0:
                raise ValueError("right slot occupied")
            self.right[host] = node

    # -- packing -----------------------------------------------------------------
    def dims(self, i: int) -> tuple[float, float]:
        if self.rotated[i]:
            return float(self.heights[i]), float(self.widths[i])
        return float(self.widths[i]), float(self.heights[i])

    def pack(self) -> PackedFloorplan:
        """Contour packing; returns lower-left coordinates and bbox."""
        xs = np.zeros(self.n)
        ys = np.zeros(self.n)
        contour = _Contour()
        max_x = 0.0
        max_y = 0.0

        stack = [(self.root, 0.0)]
        # Iterative DFS: process node, push right then left (left first).
        while stack:
            node, x = stack.pop()
            w, h = self.dims(node)
            y = contour.max_height(x, x + w)
            xs[node] = x
            ys[node] = y
            contour.add(x, x + w, y + h)
            max_x = max(max_x, x + w)
            max_y = max(max_y, y + h)
            if self.right[node] >= 0:
                stack.append((int(self.right[node]), x))
            if self.left[node] >= 0:
                stack.append((int(self.left[node]), x + w))
        # Report coordinates per original rectangle, not per tree slot.
        rx = np.empty(self.n)
        ry = np.empty(self.n)
        rx[self.rect_of_slot] = xs
        ry[self.rect_of_slot] = ys
        return PackedFloorplan(x=rx, y=ry, width=max_x, height=max_y)

    def rect_dims(self) -> tuple[np.ndarray, np.ndarray]:
        """(width, height) per original rectangle under current rotation."""
        w = np.empty(self.n)
        h = np.empty(self.n)
        for slot in range(self.n):
            ww, hh = self.dims(slot)
            w[self.rect_of_slot[slot]] = ww
            h[self.rect_of_slot[slot]] = hh
        return w, h

    # -- perturbations ---------------------------------------------------------------
    def rotate(self, i: int) -> None:
        self.rotated[i] = ~self.rotated[i]

    def swap(self, a: int, b: int) -> None:
        """Exchange two rectangles' tree positions (sizes travel along)."""
        if a == b:
            return
        for arr in (self.widths, self.heights, self.rect_of_slot):
            arr[a], arr[b] = arr[b], arr[a]
        self.rotated[a], self.rotated[b] = self.rotated[b], self.rotated[a]

    def detach_leaf(self, i: int) -> bool:
        """Remove leaf *i* from the tree; False if *i* is not a leaf/root."""
        if i == self.root or self.left[i] >= 0 or self.right[i] >= 0:
            return False
        p = int(self.parent[i])
        if self.left[p] == i:
            self.left[p] = -1
        elif self.right[p] == i:
            self.right[p] = -1
        self.parent[i] = -1
        return True

    def move_leaf(self, i: int, rng: np.random.Generator) -> bool:
        """Detach leaf *i* and reinsert it at a random free slot."""
        if not self.detach_leaf(i):
            return False
        self._insert_random(i, rng)
        return True

    def perturb(self, rng: np.random.Generator) -> None:
        """One random move: rotate (40%), swap (40%), or move-leaf (20%)."""
        u = rng.random()
        if u < 0.4 or self.n == 1:
            self.rotate(int(rng.integers(0, self.n)))
        elif u < 0.8:
            a, b = rng.choice(self.n, size=2, replace=False)
            self.swap(int(a), int(b))
        else:
            leaves = [
                i
                for i in range(self.n)
                if i != self.root and self.left[i] < 0 and self.right[i] < 0
            ]
            if leaves:
                self.move_leaf(int(rng.choice(leaves)), rng)
            else:
                self.rotate(int(rng.integers(0, self.n)))

    def copy_state(self) -> dict:
        """Snapshot for SA accept/reject."""
        return {
            "widths": self.widths.copy(),
            "heights": self.heights.copy(),
            "rotated": self.rotated.copy(),
            "rect_of_slot": self.rect_of_slot.copy(),
            "parent": self.parent.copy(),
            "left": self.left.copy(),
            "right": self.right.copy(),
            "root": self.root,
        }

    def restore_state(self, state: dict) -> None:
        self.widths[...] = state["widths"]
        self.heights[...] = state["heights"]
        self.rotated[...] = state["rotated"]
        self.rect_of_slot[...] = state["rect_of_slot"]
        self.parent[...] = state["parent"]
        self.left[...] = state["left"]
        self.right[...] = state["right"]
        self.root = state["root"]
