"""The macro-group allocation environment (the paper's MDP, Sec. III-A)."""

from repro.env.placement_env import EpisodeRecord, MacroGroupPlacementEnv

__all__ = ["EpisodeRecord", "MacroGroupPlacementEnv"]
