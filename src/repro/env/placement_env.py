"""MDP environment over macro-group allocation.

An episode places the macro groups of a :class:`CoarseNetlist` one at a
time (largest area first — the ordering fixed in Algorithm 1).  Actions are
flat anchor-grid indices.  At the terminal state, the environment runs the
Sec. II-B legalizer and the Sec. II-C cell placement and reports the
measured HPWL, which a :class:`RewardFunction` turns into the episode
reward shared by every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agent.state import EnvState, StateBuilder
from repro.coarsen.coarse import CoarseNetlist
from repro.gp.mixed_size import place_cells_with_fixed_macros
from repro.legalize.pipeline import MacroLegalizer
from repro.utils.rng import ensure_rng


@dataclass
class EpisodeRecord:
    """Everything one episode produced."""

    actions: list[int] = field(default_factory=list)
    states: list[EnvState] = field(default_factory=list)
    wirelength: float = float("nan")
    reward: float = float("nan")


class MacroGroupPlacementEnv:
    """Sequential macro-group allocation with terminal legalize-and-measure.

    Args:
        coarse: the coarsened problem instance.
        legalizer: Sec. II-B pipeline (a default one is built if omitted).
        cell_place_iters: spreading iterations of the terminal cell placer —
            the main runtime/fidelity knob of terminal evaluation.
    """

    def __init__(
        self,
        coarse: CoarseNetlist,
        legalizer: MacroLegalizer | None = None,
        cell_place_iters: int = 3,
    ) -> None:
        self.coarse = coarse
        self.legalizer = legalizer if legalizer is not None else MacroLegalizer()
        self.cell_place_iters = cell_place_iters
        self.builder = StateBuilder(coarse)
        self._assignment: list[int] = []

    @property
    def n_steps(self) -> int:
        return self.builder.n_steps

    @property
    def n_actions(self) -> int:
        return self.coarse.plan.n_grids

    @property
    def assignment(self) -> list[int]:
        return list(self._assignment)

    # -- episode control -------------------------------------------------------
    def reset(self) -> EnvState:
        self.builder.reset()
        self._assignment = []
        return self.builder.observe()

    def step(self, action: int) -> tuple[EnvState | None, bool]:
        """Commit *action*; returns (next state or None, done)."""
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} outside 0..{self.n_actions - 1}")
        self.builder.apply(action)
        self._assignment.append(int(action))
        if self.builder.done():
            return None, True
        return self.builder.observe(), False

    def finalize(self) -> float:
        """Legalize macros, place cells, return the measured HPWL."""
        if not self.builder.done():
            raise RuntimeError("episode incomplete: cannot finalize")
        return self.evaluate_assignment(self._assignment)

    # -- assignment evaluation ---------------------------------------------------
    def evaluate_assignment(self, assignment: list[int]) -> float:
        """Terminal evaluation of an arbitrary complete assignment.

        Used by the episode loop, by MCTS terminal nodes, and by the
        baselines that search directly over assignments.
        """
        self.legalizer.legalize(self.coarse, assignment)
        return place_cells_with_fixed_macros(
            self.coarse.design, n_iterations=self.cell_place_iters
        )

    # -- convenience rollouts -------------------------------------------------------
    def play_random_episode(
        self, rng: int | np.random.Generator | None = None
    ) -> EpisodeRecord:
        """Uniformly-random valid episode (the Eq. 9 calibration driver)."""
        g = ensure_rng(rng)
        record = EpisodeRecord()
        state = self.reset()
        done = False
        while not done:
            mask = state.action_mask
            probs = mask / mask.sum()
            action = int(g.choice(len(probs), p=probs))
            record.states.append(state)
            record.actions.append(action)
            state, done = self.step(action)
        record.wirelength = self.finalize()
        return record

    def play_greedy_episode(
        self, policy_fn
    ) -> EpisodeRecord:
        """Episode following argmax of *policy_fn(state) -> probs (ζ²,)*."""
        record = EpisodeRecord()
        state = self.reset()
        done = False
        while not done:
            probs = np.asarray(policy_fn(state), dtype=float)
            probs = probs * state.action_mask
            if probs.sum() <= 0:
                probs = state.action_mask
            action = int(np.argmax(probs))
            record.states.append(state)
            record.actions.append(action)
            state, done = self.step(action)
        record.wirelength = self.finalize()
        return record
