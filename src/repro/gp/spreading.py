"""Blockage-aware cell spreading (FastPlace-style cell shifting).

Quadratic solves collapse cells toward their connectivity centroid; the
spreading pass redistributes them.  The algorithm is 1-D shifting applied
alternately along x (within horizontal bin strips) and y (within vertical
strips):

1. rasterize *blocked* area (fixed macros / preplaced blocks) into the bin
   grid and derive each bin's free capacity;
2. within each strip, map the cumulative cell-area distribution onto the
   cumulative free-capacity distribution (piecewise-linear inverse), so
   cells flow out of dense and blocked bins;
3. blend the mapped target with the current position by a damping factor η.

Making capacity blockage-aware is what lets the final cell placement
*respond* to macro positions — the property the paper's reward relies on
(bad macro placements must show up as longer measured wirelength).
"""

from __future__ import annotations

import numpy as np

from repro.netlist.model import Node, PlacementRegion


def blocked_area_grid(
    region: PlacementRegion, blockers: list[Node], nx: int, ny: int
) -> np.ndarray:
    """(ny, nx) array of area blocked by *blockers* in each bin."""
    blocked = np.zeros((ny, nx))
    bw = region.width / nx
    bh = region.height / ny
    for node in blockers:
        c0 = int(np.floor((node.x - region.x) / bw))
        c1 = int(np.ceil((node.x + node.width - region.x) / bw))
        r0 = int(np.floor((node.y - region.y) / bh))
        r1 = int(np.ceil((node.y + node.height - region.y) / bh))
        for r in range(max(r0, 0), min(r1, ny)):
            for c in range(max(c0, 0), min(c1, nx)):
                x_lo = region.x + c * bw
                y_lo = region.y + r * bh
                w = min(node.x + node.width, x_lo + bw) - max(node.x, x_lo)
                h = min(node.y + node.height, y_lo + bh) - max(node.y, y_lo)
                if w > 0 and h > 0:
                    blocked[r, c] += w * h
    return blocked


def _spread_axis(
    pos_main: np.ndarray,
    pos_cross: np.ndarray,
    areas: np.ndarray,
    main_lo: float,
    main_hi: float,
    cross_lo: float,
    cross_hi: float,
    capacity: np.ndarray,
    eta: float,
) -> np.ndarray:
    """One 1-D shifting pass.

    ``capacity`` has shape (n_strips, n_bins): free capacity of each bin
    along the main axis, per cross-axis strip.  Returns updated main-axis
    coordinates.
    """
    n_strips, n_bins = capacity.shape
    out = pos_main.copy()
    strip_h = (cross_hi - cross_lo) / n_strips
    strip_idx = np.clip(
        ((pos_cross - cross_lo) / strip_h).astype(int), 0, n_strips - 1
    )
    boundaries = np.linspace(main_lo, main_hi, n_bins + 1)
    for s in range(n_strips):
        mask = strip_idx == s
        if not mask.any():
            continue
        cap = np.maximum(capacity[s], 1e-9)
        cum_cap = np.concatenate(([0.0], np.cumsum(cap)))
        total_cap = cum_cap[-1]
        idx = np.flatnonzero(mask)
        order = idx[np.argsort(pos_main[idx], kind="stable")]
        a = areas[order]
        total_area = a.sum()
        if total_area <= 0:
            continue
        # Cumulative area at each cell's midpoint, normalized to capacity.
        cum_area = np.cumsum(a) - a / 2.0
        targets_cap = cum_area / total_area * total_cap
        target_pos = np.interp(targets_cap, cum_cap, boundaries)
        out[order] = (1.0 - eta) * pos_main[order] + eta * target_pos
    return out


def spread_step(
    cx: np.ndarray,
    cy: np.ndarray,
    areas: np.ndarray,
    region: PlacementRegion,
    blocked: np.ndarray,
    eta: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """One x-pass followed by one y-pass of blockage-aware shifting.

    *blocked* is the (ny, nx) blocked-area grid from
    :func:`blocked_area_grid`; bin free capacity is ``bin_area - blocked``.
    Returns damped target centers (inputs are not modified).
    """
    ny, nx = blocked.shape
    bin_area = (region.width / nx) * (region.height / ny)
    free = np.clip(bin_area - blocked, 0.0, None)

    new_cx = _spread_axis(
        cx, cy, areas,
        region.x, region.x_max, region.y, region.y_max,
        capacity=free, eta=eta,
    )
    new_cy = _spread_axis(
        cy, new_cx, areas,
        region.y, region.y_max, region.x, region.x_max,
        capacity=free.T.copy(), eta=eta,
    )
    return new_cx, new_cy
