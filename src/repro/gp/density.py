"""Electrostatic density spreading (ePlace/RePlAce-style) — optional engine.

RePlAce [10] models placement density as an electrostatic system: node
area is charge, the density penalty is the system's potential energy, and
nodes move along the electric field.  This module implements the core of
that formulation on the bin grid:

1. rasterize node area into a bin density ρ (minus each bin's free
   capacity, so blockages repel),
2. solve Poisson's equation ∇²ψ = −ρ with Neumann boundaries via the
   type-II discrete cosine transform (the standard ePlace spectral method),
3. differentiate ψ centrally to get the field (ξx, ξy) and move nodes a
   damped step along it.

:class:`ElectrostaticSpreader` plugs into the same quadratic-solve loop as
the default 1-D shifting spreader and is what
:class:`repro.baselines.replace_like.RePlAceLikePlacer` uses when
``electrostatic=True``.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

from repro.netlist.model import PlacementRegion


def rasterize_density(
    cx: np.ndarray,
    cy: np.ndarray,
    areas: np.ndarray,
    region: PlacementRegion,
    bins: int,
) -> np.ndarray:
    """(bins, bins) area density from point masses at node centers.

    Point-mass rasterization (each node's area lands in its center bin) is
    the cheap variant; adequate because the spreader runs on *cells*, which
    are far smaller than bins.
    """
    bx = np.clip(
        ((cx - region.x) / region.width * bins).astype(int), 0, bins - 1
    )
    by = np.clip(
        ((cy - region.y) / region.height * bins).astype(int), 0, bins - 1
    )
    density = np.zeros((bins, bins))
    np.add.at(density, (by, bx), areas)
    return density


def solve_poisson_dct(rho: np.ndarray) -> np.ndarray:
    """Solve ∇²ψ = −ρ with Neumann boundary conditions via DCT-II.

    Standard spectral Poisson solve: transform, divide by the Laplacian
    eigenvalues 2(cos(πi/n) − 1) + 2(cos(πj/m) − 1), zero the DC term
    (potential defined up to a constant), inverse-transform.
    """
    n, m = rho.shape
    rho_hat = dctn(rho, type=2, norm="ortho")
    i = np.arange(n)[:, None]
    j = np.arange(m)[None, :]
    eig = (2.0 * np.cos(np.pi * i / n) - 2.0) + (2.0 * np.cos(np.pi * j / m) - 2.0)
    eig[0, 0] = 1.0  # avoid division by zero; DC term zeroed below
    psi_hat = rho_hat / (-eig)
    psi_hat[0, 0] = 0.0
    return idctn(psi_hat, type=2, norm="ortho")


def field_from_potential(psi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference field E = −∇ψ, shape-preserving."""
    ey, ex = np.gradient(-psi)
    return ex, ey


class ElectrostaticSpreader:
    """Field-driven density spreading step.

    Args:
        bins: density grid resolution.
        step_frac: node displacement per iteration as a fraction of a bin.
        blocked: optional (bins, bins) pre-occupied area (macros); it enters
            the charge distribution so cells are pushed out of blockages.
    """

    def __init__(
        self,
        bins: int = 16,
        step_frac: float = 0.6,
        blocked: np.ndarray | None = None,
    ) -> None:
        self.bins = bins
        self.step_frac = step_frac
        self.blocked = blocked

    def step(
        self,
        cx: np.ndarray,
        cy: np.ndarray,
        areas: np.ndarray,
        region: PlacementRegion,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One field step; returns new centers (inputs untouched)."""
        bins = self.bins
        density = rasterize_density(cx, cy, areas, region, bins)
        if self.blocked is not None:
            density = density + self.blocked
        bin_area = (region.width / bins) * (region.height / bins)
        # Charge = overfill relative to uniform target density.
        target = density.sum() / (bins * bins)
        rho = (density - target) / max(bin_area, 1e-12)

        psi = solve_poisson_dct(rho)
        ex, ey = field_from_potential(psi)

        bx = np.clip(((cx - region.x) / region.width * bins).astype(int), 0, bins - 1)
        by = np.clip(((cy - region.y) / region.height * bins).astype(int), 0, bins - 1)
        fx = ex[by, bx]
        fy = ey[by, bx]
        norm = max(float(np.abs(np.concatenate([fx, fy])).max()), 1e-12)
        step_x = self.step_frac * (region.width / bins) * fx / norm
        step_y = self.step_frac * (region.height / bins) * fy / norm

        new_cx = np.clip(cx + step_x, region.x, region.x_max)
        new_cy = np.clip(cy + step_y, region.y, region.y_max)
        return new_cx, new_cy

    def overflow(
        self,
        cx: np.ndarray,
        cy: np.ndarray,
        areas: np.ndarray,
        region: PlacementRegion,
    ) -> float:
        """Total overfilled area above the uniform target — ePlace's
        convergence metric (0 when perfectly spread)."""
        density = rasterize_density(cx, cy, areas, region, self.bins)
        if self.blocked is not None:
            density = density + self.blocked
        target = density.sum() / (self.bins * self.bins)
        return float(np.clip(density - target, 0.0, None).sum())
