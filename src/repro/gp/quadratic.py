"""Sparse solves for quadratic placement.

Solves the Laplacian systems assembled by
:func:`repro.gp.netmodel.build_quadratic_system`.  The Laplacian is only
positive *semi*-definite (connected components with no fixed pin float
freely), so a small diagonal regularization anchored at the region center
makes the solve unconditionally well-posed; anchor pseudo-nets (used by the
spreading loop) enter the same way with per-node weights and targets.
"""

from __future__ import annotations

import hashlib

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.gp.netmodel import QuadraticSystem
from repro.netlist.hpwl import FlatNetlist


class FactorizationCache:
    """Memo of :func:`scipy.sparse.linalg.factorized` solvers by matrix content.

    The legalization pipeline solves the same Laplacian over and over: the
    matrix depends only on connectivity, the movable mask, and the anchor
    weights — none of which change between terminal evaluations — while
    only the right-hand sides (fixed-node positions) vary.  Keying the
    factorized solver on a digest of the exact CSC triplet arrays makes the
    reuse *structurally* bitwise-safe: a hit returns the same LU solver
    object that a fresh ``factorized(A)`` call would rebuild from identical
    bytes, so the triangular solves produce identical floats.  Any change
    to the matrix — different netlist, mask, or regularization — changes
    the digest and misses.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple[tuple[int, int], str], object] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _digest(A_csc) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(A_csc.indptr.tobytes())
        h.update(A_csc.indices.tobytes())
        h.update(A_csc.data.tobytes())
        return h.hexdigest()

    def solver_for(self, A_csc):
        """Return a solve callable for *A_csc*, factorizing on first sight."""
        key = (A_csc.shape, self._digest(A_csc))
        solver = self._entries.get(key)
        if solver is not None:
            self.hits += 1
            return solver
        self.misses += 1
        solver = spla.factorized(A_csc)
        if len(self._entries) >= self.max_entries:
            # drop the oldest entry (insertion order); the pipeline cycles
            # through a handful of matrices, so eviction is a formality
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = solver
        return solver


def solve_system(
    system: QuadraticSystem,
    center: tuple[float, float],
    anchor_weight: np.ndarray | float = 0.0,
    anchor_x: np.ndarray | None = None,
    anchor_y: np.ndarray | None = None,
    regularization: float = 1e-6,
    factor_cache: FactorizationCache | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve for unknown x/y positions.

    Args:
        system: assembled quadratic system.
        center: fallback target for the regularization anchor (die center).
        anchor_weight: scalar or per-unknown pseudo-net weights pulling each
            unknown toward (anchor_x, anchor_y) — the spreading loop's handle.
        anchor_x/anchor_y: pseudo-net targets (default: die center).
        regularization: tiny diagonal term guaranteeing positive definiteness.
        factor_cache: optional :class:`FactorizationCache`; repeated solves
            against a byte-identical matrix reuse one LU factorization
            (bitwise-identical results, the factorization cost amortized).

    Returns:
        (x, y) arrays over all unknowns (movables first, then star nodes).
    """
    n = system.A.shape[0]
    cx, cy = center
    ax = np.full(n, cx) if anchor_x is None else np.asarray(anchor_x, dtype=float)
    ay = np.full(n, cy) if anchor_y is None else np.asarray(anchor_y, dtype=float)
    w = np.broadcast_to(np.asarray(anchor_weight, dtype=float), (n,)).copy()
    w += regularization

    A = system.A + sp.diags(w)
    bx = system.bx + w * ax
    by = system.by + w * ay

    if n == 0:
        return np.zeros(0), np.zeros(0)
    if n <= 2000:
        if factor_cache is not None:
            solve = factor_cache.solver_for(A.tocsc())
        else:
            solve = spla.factorized(A.tocsc())
        return solve(bx), solve(by)
    x, _ = spla.cg(A, bx, rtol=1e-8, maxiter=2000)
    y, _ = spla.cg(A, by, rtol=1e-8, maxiter=2000)
    return x, y


def solve_quadratic_placement(
    flat: FlatNetlist,
    movable_mask: np.ndarray,
    region_center: tuple[float, float],
    clique_threshold: int = 6,
    anchor_weight: np.ndarray | float = 0.0,
    anchor_x: np.ndarray | None = None,
    anchor_y: np.ndarray | None = None,
    apply: bool = True,
    factor_cache: FactorizationCache | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot quadratic placement of the masked nodes of *flat*.

    Builds the system against the *current* positions of fixed nodes and
    solves it.  When *apply* is True the new centers are written back into
    ``flat.cx/cy`` (the object model is untouched until
    :meth:`FlatNetlist.writeback`).

    Returns the (x, y) centers of the movable nodes, in ``movable_mask``
    order (star-node positions are internal and discarded).
    """
    from repro.gp.netmodel import build_quadratic_system

    system = build_quadratic_system(flat, movable_mask, clique_threshold)
    n_mov = len(system.movable)
    n = system.A.shape[0]

    def expand(arr: np.ndarray | None) -> np.ndarray | None:
        """Lift per-movable anchor arrays onto the full unknown vector."""
        if arr is None:
            return None
        arr = np.asarray(arr, dtype=float)
        if arr.shape == (n,):
            return arr
        if arr.shape == (n_mov,):
            out = np.full(n, np.nan)
            out[:n_mov] = arr
            out[n_mov:] = region_center[0]  # placeholder, fixed below per-axis
            return out
        raise ValueError("anchor arrays must cover movables or all unknowns")

    ax = expand(anchor_x)
    ay = expand(anchor_y)
    if ay is not None and len(ay) == n:
        ay[n_mov:] = region_center[1]
    w = anchor_weight
    if isinstance(w, np.ndarray):
        if w.shape == (n_mov,):
            full_w = np.zeros(n)
            full_w[:n_mov] = w
            w = full_w
        elif w.shape != (n,):
            raise ValueError("anchor_weight array must cover movables or unknowns")

    x, y = solve_system(
        system,
        center=region_center,
        anchor_weight=w,
        anchor_x=ax,
        anchor_y=ay,
        factor_cache=factor_cache,
    )
    mx, my = x[:n_mov], y[:n_mov]
    if apply:
        flat.cx[system.movable] = mx
        flat.cy[system.movable] = my
    return mx, my
