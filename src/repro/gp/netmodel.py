"""Quadratic net models (clique / star).

Quadratic placement minimizes Σ w_ij ((x_i - x_j)² + (y_i - y_j)²).  Each
multi-pin net must first be decomposed into two-point connections:

- **clique** — every pin pair, each with weight ``w / (k - 1)`` (the
  standard normalization so total net weight is independent of degree);
  used for small nets.
- **star** — one auxiliary movable "star" node connected to every pin with
  weight ``w·k / (k - 1)``; used for high-degree nets where a clique would
  densify the system quadratically.

The result is the (Laplacian) normal-equation system ``A x = b_x`` /
``A y = b_y`` over movable nodes (plus star nodes), with fixed-node terms
folded into the right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.netlist.hpwl import FlatNetlist


@dataclass
class QuadraticSystem:
    """The assembled quadratic placement system.

    ``A`` is symmetric positive semi-definite over the ``n_mov + n_star``
    unknowns; ``bx``/``by`` carry fixed-pin contributions.  ``movable`` maps
    unknown index -> node index in the originating :class:`FlatNetlist`
    (star nodes have no mapping and occupy the tail of the unknown vector).
    """

    A: sp.csr_matrix
    bx: np.ndarray
    by: np.ndarray
    movable: np.ndarray  # node indices of the first n_mov unknowns
    n_star: int


def build_quadratic_system(
    flat: FlatNetlist,
    movable_mask: np.ndarray,
    clique_threshold: int = 6,
    min_weight: float = 1e-9,
) -> QuadraticSystem:
    """Assemble ``A x = b`` from *flat* for the nodes selected by *movable_mask*.

    Nodes where ``movable_mask`` is False are treated as fixed at their
    current centers.  Nets whose pins are all fixed contribute nothing.
    Nets of degree <= *clique_threshold* use the clique model, larger nets
    the star model.
    """
    if movable_mask.shape != (flat.n_nodes,):
        raise ValueError("movable_mask must have one entry per node")
    movable = np.flatnonzero(movable_mask)
    n_mov = len(movable)
    unknown_of_node = -np.ones(flat.n_nodes, dtype=np.int64)
    unknown_of_node[movable] = np.arange(n_mov)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_star = 0
    star_rows: list[tuple[int, list[int], list[float], float]] = []

    # Pre-extract per-net pin slices once.
    fx = flat.cx
    fy = flat.cy

    bx_fixed: dict[int, float] = {}
    by_fixed: dict[int, float] = {}

    def add_pair(u: int, v: int, w: float, xu: float, yu: float, xv: float, yv: float):
        """Add a weighted two-point connection between unknowns/fixeds."""
        if u >= 0 and v >= 0:
            rows.extend((u, v, u, v))
            cols.extend((u, v, v, u))
            vals.extend((w, w, -w, -w))
        elif u >= 0:
            rows.append(u)
            cols.append(u)
            vals.append(w)
            bx_fixed[u] = bx_fixed.get(u, 0.0) + w * xv
            by_fixed[u] = by_fixed.get(u, 0.0) + w * yv
        elif v >= 0:
            rows.append(v)
            cols.append(v)
            vals.append(w)
            bx_fixed[v] = bx_fixed.get(v, 0.0) + w * xu
            by_fixed[v] = by_fixed.get(v, 0.0) + w * yu
        # both fixed: constant term, ignore

    for net_idx in range(flat.n_nets):
        lo = int(flat.net_ptr[net_idx])
        hi = int(flat.net_ptr[net_idx + 1])
        nodes = flat.pin_node[lo:hi]
        k = hi - lo
        w_net = float(flat.net_weight[net_idx])
        if w_net <= min_weight or k < 2:
            continue
        unknowns = unknown_of_node[nodes]
        if np.all(unknowns < 0):
            continue
        if k <= clique_threshold:
            w = w_net / (k - 1)
            for a in range(k):
                for b in range(a + 1, k):
                    na, nb = int(nodes[a]), int(nodes[b])
                    add_pair(
                        int(unknowns[a]),
                        int(unknowns[b]),
                        w,
                        fx[na],
                        fy[na],
                        fx[nb],
                        fy[nb],
                    )
        else:
            # Star: auxiliary unknown at index n_mov + star_id.
            w = w_net * k / (k - 1)
            star_id = n_mov + n_star
            n_star += 1
            neighbor_unknowns: list[int] = []
            neighbor_weights: list[float] = []
            fixed_x = fixed_y = 0.0
            fixed_w = 0.0
            for a in range(k):
                ua = int(unknowns[a])
                na = int(nodes[a])
                rows.extend((star_id,))
                cols.extend((star_id,))
                vals.extend((w,))
                if ua >= 0:
                    rows.extend((ua, ua, star_id))
                    cols.extend((ua, star_id, ua))
                    vals.extend((w, -w, -w))
                    neighbor_unknowns.append(ua)
                    neighbor_weights.append(w)
                else:
                    fixed_x += w * fx[na]
                    fixed_y += w * fy[na]
                    fixed_w += w
            star_rows.append((star_id, neighbor_unknowns, neighbor_weights, fixed_w))
            if fixed_w > 0:
                bx_fixed[star_id] = bx_fixed.get(star_id, 0.0) + fixed_x
                by_fixed[star_id] = by_fixed.get(star_id, 0.0) + fixed_y

    n = n_mov + n_star
    A = sp.coo_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
    ).tocsr()
    bx = np.zeros(n)
    by = np.zeros(n)
    for i, v in bx_fixed.items():
        bx[i] = v
    for i, v in by_fixed.items():
        by[i] = v
    return QuadraticSystem(A=A, bx=bx, by=by, movable=movable, n_star=n_star)
