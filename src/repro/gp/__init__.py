"""Analytical global-placement substrate.

Stands in for the paper's two analytical dependencies:

- the "analytical global placement method [23]" that produces the initial
  prototype placement consumed by the clustering step (Sec. II-A), and
- DREAMPlace [25], the mixed-size placer used for final cell placement and
  wirelength measurement (Sec. II-C) and as a baseline in Table II.

The engine is classic quadratic placement: a clique/star net model yields a
sparse Laplacian system, solved with conjugate gradients; bin-based cell
shifting (FastPlace-style) with anchor pseudo-nets spreads overlapping
cells over successive iterations.
"""

from repro.gp.netmodel import build_quadratic_system
from repro.gp.quadratic import solve_quadratic_placement
from repro.gp.mixed_size import MixedSizePlacer, place_cells_with_fixed_macros

__all__ = [
    "MixedSizePlacer",
    "build_quadratic_system",
    "place_cells_with_fixed_macros",
    "solve_quadratic_placement",
]
