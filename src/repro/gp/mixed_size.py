"""Mixed-size analytical placer — the DREAMPlace [25] stand-in.

Two entry points:

- :class:`MixedSizePlacer` — full mixed-size placement: macros and cells
  placed together by iterated quadratic solves + blockage-aware spreading,
  then movable macros legalized by greedy displacement-minimal snapping.
  This is the "[25]" baseline column of Table II and the initial-prototype
  placement "[23]" feeding the clustering step.
- :func:`place_cells_with_fixed_macros` — the flow's cell-placement step
  (Sec. II-C): macros are fixed, cells are placed around them, and the
  measured HPWL is returned.  This is what turns a macro-group allocation
  into the wirelength the RL reward (Eq. 9) and the MCTS terminal
  evaluation consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gp.quadratic import solve_quadratic_placement
from repro.gp.spreading import blocked_area_grid, spread_step
from repro.netlist.hpwl import FlatNetlist
from repro.netlist.model import Design, NodeKind, PlacementRegion


@dataclass
class PlacementResult:
    """Outcome of an analytical placement run."""

    hpwl: float
    iterations: int
    macro_overlap: float


def _clamp_centers(
    flat: FlatNetlist, idx: np.ndarray, region: PlacementRegion
) -> None:
    """Clamp node centers so rectangles stay inside *region*."""
    half_w = flat.width[idx] / 2.0
    half_h = flat.height[idx] / 2.0
    flat.cx[idx] = np.clip(
        flat.cx[idx],
        region.x + half_w,
        np.maximum(region.x + half_w, region.x_max - half_w),
    )
    flat.cy[idx] = np.clip(
        flat.cy[idx],
        region.y + half_h,
        np.maximum(region.y + half_h, region.y_max - half_h),
    )


def _total_overlap(rects: list[tuple[float, float, float, float]]) -> float:
    """Sum of pairwise intersection areas of (x, y, w, h) rectangles."""
    total = 0.0
    for i in range(len(rects)):
        xi, yi, wi, hi = rects[i]
        for j in range(i + 1, len(rects)):
            xj, yj, wj, hj = rects[j]
            w = min(xi + wi, xj + wj) - max(xi, xj)
            h = min(yi + hi, yj + hj) - max(yi, yj)
            if w > 0 and h > 0:
                total += w * h
    return total


def legalize_macros_greedy(design: Design, max_radius_steps: int = 24) -> float:
    """Snap movable macros to overlap-free positions near their GP targets.

    Processes macros in non-increasing area order (the big ones anchor the
    floorplan); each macro scans a spiral of candidate positions around its
    analytical position and takes the closest candidate with no overlap
    against preplaced or previously-legalized macros.  Returns the residual
    pairwise macro overlap (0.0 when legalization fully succeeded).
    """
    region = design.region
    placed: list[tuple[float, float, float, float]] = [
        (m.x, m.y, m.width, m.height) for m in design.netlist.preplaced_macros
    ]
    movable = sorted(design.netlist.movable_macros, key=lambda m: -m.area)
    if not movable:
        return 0.0
    step = max(
        min(region.width, region.height) / (2.0 * max_radius_steps),
        min(min(m.width, m.height) for m in movable) / 2.0,
    )

    def collides(x: float, y: float, w: float, h: float) -> bool:
        for px, py, pw, ph in placed:
            if x < px + pw and px < x + w and y < py + ph and py < y + h:
                return True
        return False

    residual: list[tuple[float, float, float, float]] = []
    for macro in movable:
        tx, ty = macro.x, macro.y
        best: tuple[float, float] | None = None
        for ring in range(max_radius_steps + 1):
            candidates: list[tuple[float, float]] = []
            if ring == 0:
                candidates.append((tx, ty))
            else:
                r = ring * step
                n_angles = max(8, ring * 8)
                for a in range(n_angles):
                    theta = 2.0 * math.pi * a / n_angles
                    candidates.append((tx + r * math.cos(theta), ty + r * math.sin(theta)))
            found = None
            for cx_, cy_ in candidates:
                x = min(max(cx_, region.x), region.x_max - macro.width)
                y = min(max(cy_, region.y), region.y_max - macro.height)
                if not collides(x, y, macro.width, macro.height):
                    d = (x - tx) ** 2 + (y - ty) ** 2
                    if found is None or d < found[0]:
                        found = (d, x, y)
            if found is not None:
                best = (found[1], found[2])
                break
        if best is None:
            # No free slot found: keep the clamped analytical position.
            best = (
                min(max(tx, region.x), max(region.x, region.x_max - macro.width)),
                min(max(ty, region.y), max(region.y, region.y_max - macro.height)),
            )
            residual.append((best[0], best[1], macro.width, macro.height))
        macro.x, macro.y = best
        placed.append((macro.x, macro.y, macro.width, macro.height))

    if not residual:
        return 0.0
    all_rects = [(m.x, m.y, m.width, m.height) for m in movable] + [
        (m.x, m.y, m.width, m.height) for m in design.netlist.preplaced_macros
    ]
    return _total_overlap(all_rects)


class MixedSizePlacer:
    """Quadratic + spreading mixed-size placer (DREAMPlace stand-in).

    Args:
        n_iterations: spreading/anchored-solve rounds after the initial
            unconstrained solve.
        n_bins: spreading grid resolution per axis (default: derived from
            node count).
        anchor_base/anchor_growth: anchor pseudo-net weight schedule; larger
            weights freeze cells onto their spread targets in later rounds.
        clique_threshold: max net degree handled by the clique net model.
    """

    def __init__(
        self,
        n_iterations: int = 5,
        n_bins: int | None = None,
        anchor_base: float = 0.01,
        anchor_growth: float = 2.0,
        clique_threshold: int = 6,
        eta: float = 0.8,
        spreader: str = "shift",
    ) -> None:
        if spreader not in ("shift", "electrostatic"):
            raise ValueError(
                f"spreader must be 'shift' or 'electrostatic', got {spreader!r}"
            )
        self.n_iterations = n_iterations
        self.n_bins = n_bins
        self.anchor_base = anchor_base
        self.anchor_growth = anchor_growth
        self.clique_threshold = clique_threshold
        self.eta = eta
        self.spreader = spreader

    def _bins_for(self, n_movable: int) -> int:
        if self.n_bins is not None:
            return self.n_bins
        return int(np.clip(round(math.sqrt(max(n_movable, 1)) / 2), 4, 64))

    def _run(
        self,
        design: Design,
        movable_mask: np.ndarray,
        flat: FlatNetlist,
        blockers: list | None = None,
    ) -> int:
        region = design.region
        center = (region.x + region.width / 2.0, region.y + region.height / 2.0)
        idx = np.flatnonzero(movable_mask)
        if len(idx) == 0:
            return 0
        areas = flat.width[idx] * flat.height[idx]
        nb = self._bins_for(len(idx))
        if blockers is None:
            blockers = [
                n for n in design.netlist if n.fixed and n.kind is not NodeKind.PAD
            ]
        blocked = blocked_area_grid(region, blockers, nb, nb)

        # Initial pure-connectivity solve.
        solve_quadratic_placement(
            flat, movable_mask, center, clique_threshold=self.clique_threshold
        )
        _clamp_centers(flat, idx, region)

        electro = None
        if self.spreader == "electrostatic":
            from repro.gp.density import ElectrostaticSpreader

            electro = ElectrostaticSpreader(bins=nb, blocked=blocked)

        weight = self.anchor_base
        iterations = 0
        for _ in range(self.n_iterations):
            if electro is not None:
                sx, sy = flat.cx[idx].copy(), flat.cy[idx].copy()
                for _sub in range(4):  # a few field steps per anchored solve
                    sx, sy = electro.step(sx, sy, areas, region)
            else:
                sx, sy = spread_step(
                    flat.cx[idx], flat.cy[idx], areas, region, blocked, eta=self.eta
                )
            solve_quadratic_placement(
                flat,
                movable_mask,
                center,
                clique_threshold=self.clique_threshold,
                anchor_weight=np.full(len(idx), weight),
                anchor_x=sx,
                anchor_y=sy,
            )
            _clamp_centers(flat, idx, region)
            weight *= self.anchor_growth
            iterations += 1
        return iterations

    def place(self, design: Design, move_macros: bool = True) -> PlacementResult:
        """Place *design* in-place and return the measured result.

        With ``move_macros=False`` only standard cells move (macros must
        already be fixed/placed); this is the configuration used as the
        flow's final cell-placement step.
        """
        flat = FlatNetlist(design.netlist)
        movable_mask = ~flat.fixed
        blockers = None
        if not move_macros:
            for i, node in enumerate(design.netlist):
                if node.kind is NodeKind.MACRO:
                    movable_mask[i] = False
                    flat.fixed[i] = True
            blockers = list(design.netlist.macros)
        iterations = self._run(design, movable_mask, flat, blockers=blockers)
        flat.writeback()

        overlap = 0.0
        if move_macros:
            overlap = legalize_macros_greedy(design)
            flat.refresh_from_model()
            # Re-place cells around the now-legal macros.
            cell_mask = movable_mask.copy()
            for i, node in enumerate(design.netlist):
                if node.kind is NodeKind.MACRO:
                    cell_mask[i] = False
                    flat.fixed[i] = True
            all_macros = list(design.netlist.macros)
            iterations += self._run(design, cell_mask, flat, blockers=all_macros)
            flat.writeback()

        return PlacementResult(
            hpwl=flat.total_hpwl(), iterations=iterations, macro_overlap=overlap
        )


def place_cells_with_fixed_macros(
    design: Design, n_iterations: int = 4
) -> float:
    """Place standard cells around the current (fixed) macros; return HPWL.

    This is the flow's Sec. II-C step: "After all the macros have been
    placed, we leverage [a] mixed-size placer to generate [the] full
    placement result, which also returns a measured wirelength value."
    """
    placer = MixedSizePlacer(n_iterations=n_iterations)
    return placer.place(design, move_macros=False).hpwl
